// Unit tests for the trace layer's data plane: spec validation, versioned
// CRC-guarded (de)serialization including zero- and single-frame traces,
// and the first-divergence diffing used by the conformance harness. No
// pipeline is fitted here — conformance_test covers the live record/replay
// path; these tests pin the format and the diff semantics.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "tensor/serialize.hpp"
#include "trace/trace.hpp"

namespace salnov::trace {
namespace {

std::filesystem::path temp_path(const std::string& name) {
  return std::filesystem::temp_directory_path() / ("salnov_trace_test_" + name);
}

/// A representative trace: two frames with distinct decisions plus nonzero
/// health counters, so every serialized field has a non-default value
/// somewhere.
Trace sample_trace() {
  Trace trace;
  trace.spec.dataset = "indoor";
  trace.spec.frame_seed = 7;
  trace.spec.fault_seed = 11;
  trace.spec.frames = 2;
  trace.spec.height = 16;
  trace.spec.width = 24;
  trace.spec.stalls.push_back({2, 10'000'000, 3, 9, 2});
  trace.spec.camera_faults.push_back(
      {faults::CameraFault::kSaltPepper, 0.75, 4, 8, 1});
  trace.spec.supervisor.stage_budget_ns = {1, 2, 3, 4, 5};
  trace.spec.supervisor.frame_budget_ns = 99;
  trace.spec.supervisor.breaker.failure_threshold = 2;
  trace.spec.supervisor.breaker.open_frames = 6;
  trace.spec.supervisor.demote_after_bad_frames = 3;
  trace.spec.supervisor.promote_after_healthy_frames = 4;
  trace.spec.supervisor.monitor.trigger_frames = 2;
  trace.spec.supervisor.monitor.release_frames = 7;
  trace.spec.supervisor.monitor.score_smoothing = 0.25;
  trace.spec.supervisor.monitor.sensor_trigger_frames = 1;
  trace.spec.supervisor.monitor.sensor_release_frames = 9;
  trace.spec.supervisor.monitor.detect_frozen_frames = false;
  trace.spec.supervisor.calibration.enabled = true;
  trace.spec.supervisor.calibration.auto_swap = false;
  trace.spec.supervisor.calibration.percentile = 0.95;
  trace.spec.supervisor.calibration.warmup = 32;
  trace.spec.supervisor.calibration.min_samples = 100;
  trace.spec.supervisor.calibration.drift_tolerance = 0.75;
  trace.spec.supervisor.calibration.check_every_frames = 16;
  trace.spec.supervisor.calibration.trigger_checks = 2;
  trace.spec.supervisor.calibration.release_checks = 3;
  trace.spec.supervisor.calibration.forced_swap_frames = {1, 5};
  trace.spec.cluster.streams = 2;
  trace.spec.cluster.replicas = 1;  // stalls above require a single replica
  trace.spec.cluster.gather_window_ns = 3'000'000;
  trace.spec.cluster.max_batch = 8;
  trace.spec.cluster.arrival_period_ns = 500'000;
  trace.spec.cluster.watchdog.enabled = true;
  trace.spec.cluster.watchdog.batch_deadline_ns = 4'000'000;
  trace.spec.cluster.watchdog.heartbeat_timeout_ns = 40'000'000;
  trace.spec.cluster.watchdog.missed_deadlines_to_quarantine = 3;
  trace.spec.cluster.watchdog.canary_period_ns = 20'000'000;
  trace.spec.cluster.watchdog.canary_failures_to_quarantine = 2;
  trace.spec.cluster.watchdog.probe_backoff_ns = 6'000'000;
  trace.spec.cluster.watchdog.max_probe_backoff_ns = 48'000'000;
  trace.spec.cluster.watchdog.max_redispatches = 5;
  trace.spec.cluster.watchdog.canary_epsilon = 2e-3;
  trace.spec.cluster.admission_credits = 4;
  trace.spec.cluster.replica_faults.push_back(
      {/*replica=*/0, faults::ReplicaFaultKind::kSlow, /*start_ns=*/1'000'000,
       /*end_ns=*/9'000'000, /*slow_penalty_ns=*/5'000'000});
  trace.spec.cluster.replica_faults.push_back(
      {/*replica=*/0, faults::ReplicaFaultKind::kWeightCorrupt, /*start_ns=*/2'000'000,
       /*end_ns=*/3'000'000, /*slow_penalty_ns=*/0, /*weight_bits=*/16, /*seed=*/9});
  trace.spec.pipeline_crc = 0xdeadbeef;
  trace.spec.pipeline_bytes = 12345;

  TraceFrame f0;
  f0.frame_index = 0;
  f0.mode = serving::ServingMode::kVbpSsim;
  f0.scored = true;
  f0.novel = false;
  f0.score = 0.875;
  f0.steering = -0.25;
  f0.stage_ns = {1, 2, 3, 4, 5};
  trace.frames.push_back(f0);

  TraceFrame f1;
  f1.frame_index = 1;
  f1.mode = serving::ServingMode::kRawMse;
  f1.scored = true;
  f1.novel = true;
  f1.deadline_overrun = true;
  f1.score = 123.5;
  f1.steering = 0.5;
  f1.monitor_state = core::MonitorState::kAlert;
  f1.stage_ns = {5, 4, 3, 2, 1};
  f1.mode_after = serving::ServingMode::kVbpMse;
  f1.breaker_after = serving::BreakerState::kOpen;
  f1.swapped = true;
  f1.epoch_after = 1;
  f1.stream_id = 1;
  trace.frames.push_back(f1);

  trace.health.frames_total = 2;
  trace.health.frames_scored = 2;
  trace.health.deadline_overruns = 1;
  trace.health.step_downs = 1;
  trace.health.breaker_trips = 1;
  trace.health.drift_checks = 4;
  trace.health.drift_detections = 2;
  trace.health.threshold_swaps = 1;
  trace.health.threshold_epoch = 1;

  // Format v4: the failure-domain event log and end-of-run counters.
  trace.events.push_back({serving::ClusterEventKind::kQuarantine, /*at_ns=*/1'500'000,
                          /*replica=*/0, /*stream=*/-1, /*detail=*/0});
  trace.events.push_back({serving::ClusterEventKind::kFailover, /*at_ns=*/1'500'000,
                          /*replica=*/0, /*stream=*/1, /*detail=*/2});
  trace.events.push_back({serving::ClusterEventKind::kShed, /*at_ns=*/2'000'000,
                          /*replica=*/-1, /*stream=*/1, /*detail=*/5});
  trace.cluster_health.quarantines = 1;
  trace.cluster_health.probe_attempts = 2;
  trace.cluster_health.probe_failures = 1;
  trace.cluster_health.restores = 1;
  trace.cluster_health.failovers = 1;
  trace.cluster_health.redispatched_frames = 2;
  trace.cluster_health.fallback_frames = 1;
  trace.cluster_health.shed_frames = 1;
  return trace;
}

void expect_traces_equal(const Trace& a, const Trace& b) {
  // compare() ignores the spec, so check it directly...
  EXPECT_EQ(a.spec.dataset, b.spec.dataset);
  EXPECT_EQ(a.spec.frame_seed, b.spec.frame_seed);
  EXPECT_EQ(a.spec.fault_seed, b.spec.fault_seed);
  EXPECT_EQ(a.spec.frames, b.spec.frames);
  EXPECT_EQ(a.spec.height, b.spec.height);
  EXPECT_EQ(a.spec.width, b.spec.width);
  ASSERT_EQ(a.spec.stalls.size(), b.spec.stalls.size());
  for (size_t i = 0; i < a.spec.stalls.size(); ++i) {
    EXPECT_EQ(a.spec.stalls[i].stage, b.spec.stalls[i].stage);
    EXPECT_EQ(a.spec.stalls[i].stall_ns, b.spec.stalls[i].stall_ns);
    EXPECT_EQ(a.spec.stalls[i].first_frame, b.spec.stalls[i].first_frame);
    EXPECT_EQ(a.spec.stalls[i].last_frame, b.spec.stalls[i].last_frame);
    EXPECT_EQ(a.spec.stalls[i].period, b.spec.stalls[i].period);
  }
  ASSERT_EQ(a.spec.camera_faults.size(), b.spec.camera_faults.size());
  for (size_t i = 0; i < a.spec.camera_faults.size(); ++i) {
    EXPECT_EQ(a.spec.camera_faults[i].fault, b.spec.camera_faults[i].fault);
    EXPECT_EQ(a.spec.camera_faults[i].severity, b.spec.camera_faults[i].severity);
    EXPECT_EQ(a.spec.camera_faults[i].first_frame, b.spec.camera_faults[i].first_frame);
    EXPECT_EQ(a.spec.camera_faults[i].last_frame, b.spec.camera_faults[i].last_frame);
    EXPECT_EQ(a.spec.camera_faults[i].period, b.spec.camera_faults[i].period);
  }
  EXPECT_EQ(a.spec.supervisor.stage_budget_ns, b.spec.supervisor.stage_budget_ns);
  EXPECT_EQ(a.spec.supervisor.frame_budget_ns, b.spec.supervisor.frame_budget_ns);
  EXPECT_EQ(a.spec.supervisor.breaker.failure_threshold,
            b.spec.supervisor.breaker.failure_threshold);
  EXPECT_EQ(a.spec.supervisor.breaker.open_frames, b.spec.supervisor.breaker.open_frames);
  EXPECT_EQ(a.spec.supervisor.demote_after_bad_frames, b.spec.supervisor.demote_after_bad_frames);
  EXPECT_EQ(a.spec.supervisor.promote_after_healthy_frames,
            b.spec.supervisor.promote_after_healthy_frames);
  EXPECT_EQ(a.spec.supervisor.monitor.trigger_frames, b.spec.supervisor.monitor.trigger_frames);
  EXPECT_EQ(a.spec.supervisor.monitor.release_frames, b.spec.supervisor.monitor.release_frames);
  EXPECT_EQ(a.spec.supervisor.monitor.score_smoothing, b.spec.supervisor.monitor.score_smoothing);
  EXPECT_EQ(a.spec.supervisor.monitor.sensor_trigger_frames,
            b.spec.supervisor.monitor.sensor_trigger_frames);
  EXPECT_EQ(a.spec.supervisor.monitor.sensor_release_frames,
            b.spec.supervisor.monitor.sensor_release_frames);
  EXPECT_EQ(a.spec.supervisor.monitor.detect_frozen_frames,
            b.spec.supervisor.monitor.detect_frozen_frames);
  EXPECT_EQ(a.spec.supervisor.calibration.enabled, b.spec.supervisor.calibration.enabled);
  EXPECT_EQ(a.spec.supervisor.calibration.auto_swap, b.spec.supervisor.calibration.auto_swap);
  EXPECT_EQ(a.spec.supervisor.calibration.percentile, b.spec.supervisor.calibration.percentile);
  EXPECT_EQ(a.spec.supervisor.calibration.warmup, b.spec.supervisor.calibration.warmup);
  EXPECT_EQ(a.spec.supervisor.calibration.min_samples, b.spec.supervisor.calibration.min_samples);
  EXPECT_EQ(a.spec.supervisor.calibration.drift_tolerance,
            b.spec.supervisor.calibration.drift_tolerance);
  EXPECT_EQ(a.spec.supervisor.calibration.check_every_frames,
            b.spec.supervisor.calibration.check_every_frames);
  EXPECT_EQ(a.spec.supervisor.calibration.trigger_checks,
            b.spec.supervisor.calibration.trigger_checks);
  EXPECT_EQ(a.spec.supervisor.calibration.release_checks,
            b.spec.supervisor.calibration.release_checks);
  EXPECT_EQ(a.spec.supervisor.calibration.forced_swap_frames,
            b.spec.supervisor.calibration.forced_swap_frames);
  EXPECT_TRUE(b.spec.supervisor.calibration.store_path.empty())
      << "store_path is machine-local and must never survive serialization";
  EXPECT_EQ(a.spec.cluster.streams, b.spec.cluster.streams);
  EXPECT_EQ(a.spec.cluster.replicas, b.spec.cluster.replicas);
  EXPECT_EQ(a.spec.cluster.gather_window_ns, b.spec.cluster.gather_window_ns);
  EXPECT_EQ(a.spec.cluster.max_batch, b.spec.cluster.max_batch);
  EXPECT_EQ(a.spec.cluster.arrival_period_ns, b.spec.cluster.arrival_period_ns);
  EXPECT_EQ(a.spec.cluster.watchdog.enabled, b.spec.cluster.watchdog.enabled);
  EXPECT_EQ(a.spec.cluster.watchdog.batch_deadline_ns, b.spec.cluster.watchdog.batch_deadline_ns);
  EXPECT_EQ(a.spec.cluster.watchdog.heartbeat_timeout_ns,
            b.spec.cluster.watchdog.heartbeat_timeout_ns);
  EXPECT_EQ(a.spec.cluster.watchdog.missed_deadlines_to_quarantine,
            b.spec.cluster.watchdog.missed_deadlines_to_quarantine);
  EXPECT_EQ(a.spec.cluster.watchdog.canary_period_ns, b.spec.cluster.watchdog.canary_period_ns);
  EXPECT_EQ(a.spec.cluster.watchdog.canary_failures_to_quarantine,
            b.spec.cluster.watchdog.canary_failures_to_quarantine);
  EXPECT_EQ(a.spec.cluster.watchdog.probe_backoff_ns, b.spec.cluster.watchdog.probe_backoff_ns);
  EXPECT_EQ(a.spec.cluster.watchdog.max_probe_backoff_ns,
            b.spec.cluster.watchdog.max_probe_backoff_ns);
  EXPECT_EQ(a.spec.cluster.watchdog.max_redispatches, b.spec.cluster.watchdog.max_redispatches);
  EXPECT_EQ(a.spec.cluster.watchdog.canary_epsilon, b.spec.cluster.watchdog.canary_epsilon);
  EXPECT_EQ(a.spec.cluster.admission_credits, b.spec.cluster.admission_credits);
  ASSERT_EQ(a.spec.cluster.replica_faults.size(), b.spec.cluster.replica_faults.size());
  for (size_t i = 0; i < a.spec.cluster.replica_faults.size(); ++i) {
    EXPECT_EQ(a.spec.cluster.replica_faults[i].replica, b.spec.cluster.replica_faults[i].replica);
    EXPECT_EQ(a.spec.cluster.replica_faults[i].kind, b.spec.cluster.replica_faults[i].kind);
    EXPECT_EQ(a.spec.cluster.replica_faults[i].start_ns, b.spec.cluster.replica_faults[i].start_ns);
    EXPECT_EQ(a.spec.cluster.replica_faults[i].end_ns, b.spec.cluster.replica_faults[i].end_ns);
    EXPECT_EQ(a.spec.cluster.replica_faults[i].slow_penalty_ns,
              b.spec.cluster.replica_faults[i].slow_penalty_ns);
    EXPECT_EQ(a.spec.cluster.replica_faults[i].weight_bits,
              b.spec.cluster.replica_faults[i].weight_bits);
    EXPECT_EQ(a.spec.cluster.replica_faults[i].seed, b.spec.cluster.replica_faults[i].seed);
  }
  EXPECT_EQ(a.spec.pipeline_crc, b.spec.pipeline_crc);
  EXPECT_EQ(a.spec.pipeline_bytes, b.spec.pipeline_bytes);

  // ...and reuse the conformance diff for frames + health + the v4 event
  // log and failure-domain counters.
  const ReplayReport report = compare(a, b.frames, b.health, {}, &b.events, &b.cluster_health);
  EXPECT_TRUE(report.ok()) << report.format();
}

TEST(TraceFormat, RoundTripsThroughStream) {
  const Trace original = sample_trace();
  std::ostringstream os;
  original.save(os);
  std::istringstream is(os.str());
  const Trace loaded = Trace::load(is);
  expect_traces_equal(original, loaded);
}

TEST(TraceFormat, RoundTripsZeroFrameTrace) {
  // A zero-frame run is a valid trace (spec + empty stream + zero health) —
  // the empty-input edge the recorder, replayer, and file format must all
  // accept.
  Trace empty;
  empty.spec.frames = 0;
  std::ostringstream os;
  empty.save(os);
  std::istringstream is(os.str());
  const Trace loaded = Trace::load(is);
  EXPECT_EQ(loaded.frames.size(), 0u);
  EXPECT_EQ(loaded.health.frames_total, 0);
  const ReplayReport report = compare(empty, loaded.frames, loaded.health);
  EXPECT_TRUE(report.ok()) << report.format();
}

TEST(TraceFormat, RoundTripsSingleFrameTraceThroughFile) {
  Trace single;
  single.spec.frames = 1;
  TraceFrame frame;
  frame.frame_index = 0;
  frame.scored = true;
  frame.score = 0.5;
  single.frames.push_back(frame);
  single.health.frames_total = 1;
  single.health.frames_scored = 1;

  const auto path = temp_path("single.trace");
  single.save_file(path.string());
  const Trace loaded = Trace::load_file(path.string());
  std::filesystem::remove(path);
  expect_traces_equal(single, loaded);
}

TEST(TraceFormat, FileIsCrcGuarded) {
  const auto path = temp_path("guarded.trace");
  sample_trace().save_file(path.string());

  // Flip one payload byte: the checked loader must refuse the file.
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  file.seekp(20);
  char byte = 0;
  file.seekg(20);
  file.read(&byte, 1);
  byte ^= 0x40;
  file.seekp(20);
  file.write(&byte, 1);
  file.close();

  EXPECT_THROW(Trace::load_file(path.string()), CorruptFileError);
  std::filesystem::remove(path);
}

TEST(TraceFormat, RejectsWrongMagic) {
  std::istringstream is("not-a-trace-at-all");
  EXPECT_THROW(Trace::load(is), SerializationError);
}

TEST(TraceFormat, RejectsOutOfRangeEnums) {
  // Corrupt the serialized serving mode of the first frame and reload: the
  // loader must reject rather than cast garbage into an enum.
  Trace trace = sample_trace();
  trace.frames[0].mode = static_cast<serving::ServingMode>(3);  // highest valid
  std::ostringstream os;
  trace.save(os);
  std::string bytes = os.str();
  // The last valid value is in-range; bump the raw u32 past the enum. Find
  // it by re-saving with a poisoned value via direct byte patch: locate the
  // first frame's mode field by diffing against a trace with mode 0.
  Trace zero = sample_trace();
  zero.frames[0].mode = static_cast<serving::ServingMode>(0);
  std::ostringstream zs;
  zero.save(zs);
  const std::string zero_bytes = zs.str();
  ASSERT_EQ(bytes.size(), zero_bytes.size());
  size_t pos = std::string::npos;
  for (size_t i = 0; i < bytes.size(); ++i) {
    if (bytes[i] != zero_bytes[i]) {
      pos = i;
      break;
    }
  }
  ASSERT_NE(pos, std::string::npos);
  bytes[pos] = 100;  // way out of range
  std::istringstream is(bytes);
  EXPECT_THROW(Trace::load(is), SerializationError);
}

TEST(TraceSpec, ValidateRejectsBadSpecs) {
  TraceRunSpec spec;
  spec.dataset = "marslander";
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = TraceRunSpec{};
  spec.frames = -1;
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = TraceRunSpec{};
  spec.height = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = TraceRunSpec{};
  spec.stalls.push_back({0, -5, 0, 10, 1});  // negative stall
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = TraceRunSpec{};
  spec.camera_faults.push_back({faults::CameraFault::kOcclusion, 1.5, 0,
                                std::numeric_limits<int64_t>::max(), 1});  // severity > 1
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = TraceRunSpec{};
  spec.camera_faults.push_back({faults::CameraFault::kOcclusion, 0.5, 10, 4, 1});  // inverted
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = TraceRunSpec{};
  spec.frames = 0;  // zero frames is explicitly allowed
  EXPECT_NO_THROW(spec.validate());
}

TEST(TraceSpec, ValidateEnforcesClusterRules) {
  // A well-formed multi-stream spec passes.
  TraceRunSpec spec;
  spec.cluster.streams = 3;
  spec.cluster.replicas = 2;
  EXPECT_NO_THROW(spec.validate());

  // streams == 0 is the legacy single-supervisor driver; negative is garbage.
  spec = TraceRunSpec{};
  spec.cluster.streams = -1;
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = TraceRunSpec{};
  spec.cluster.streams = 2;
  spec.cluster.replicas = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = TraceRunSpec{};
  spec.cluster.streams = 2;
  spec.cluster.max_batch = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = TraceRunSpec{};
  spec.cluster.streams = 2;
  spec.cluster.gather_window_ns = -1;
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  // Stall injection is only deterministic with one replica: concurrent
  // replicas share the FakeClock, so stall sleeps would interleave.
  spec = TraceRunSpec{};
  spec.cluster.streams = 2;
  spec.cluster.replicas = 2;
  spec.stalls.push_back({2, 10'000'000, 0, 5, 1});
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.cluster.replicas = 1;
  EXPECT_NO_THROW(spec.validate());
}

// ---------------------------------------------------------------------------
// First-divergence reporting: each perturbed field must be attributed to
// the right frame, stage, and field.

TEST(TraceDiff, CleanComparisonReportsConformant) {
  const Trace trace = sample_trace();
  const ReplayReport report = compare(trace, trace.frames, trace.health);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.frames_compared, 2);
  EXPECT_EQ(report.format(), "replay conformant (2 frames)");
}

TEST(TraceDiff, ScoreDivergenceNamesScoreStage) {
  const Trace trace = sample_trace();
  auto frames = trace.frames;
  frames[1].score += 1.0;
  const ReplayReport report = compare(trace, frames, trace.health);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.divergence->frame, 1);
  EXPECT_EQ(report.divergence->stage, "score");
  EXPECT_EQ(report.divergence->field, "score");
  // The report names frame, stage, and field in one line.
  EXPECT_NE(report.format().find("frame 1"), std::string::npos);
  EXPECT_NE(report.format().find("stage score"), std::string::npos);
  EXPECT_NE(report.format().find("field score"), std::string::npos);
}

TEST(TraceDiff, ScoreToleranceSuppressesKernelRounding) {
  const Trace trace = sample_trace();
  auto frames = trace.frames;
  frames[0].score += 1e-9;
  EXPECT_FALSE(compare(trace, frames, trace.health).ok()) << "bit-exact mode";
  ReplayOptions tolerant;
  tolerant.score_tolerance = 1e-6;
  EXPECT_TRUE(compare(trace, frames, trace.health, tolerant).ok());
}

TEST(TraceDiff, SensorBadDivergenceNamesValidateStage) {
  const Trace trace = sample_trace();
  auto frames = trace.frames;
  frames[0].sensor_bad = true;
  const ReplayReport report = compare(trace, frames, trace.health);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.divergence->frame, 0);
  EXPECT_EQ(report.divergence->stage, "validate");
  EXPECT_EQ(report.divergence->field, "sensor_bad");
}

TEST(TraceDiff, StageTimingDivergenceNamesTheStage) {
  const Trace trace = sample_trace();
  auto frames = trace.frames;
  frames[1].stage_ns[2] += 7;  // saliency
  const ReplayReport report = compare(trace, frames, trace.health);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.divergence->frame, 1);
  EXPECT_EQ(report.divergence->stage, "saliency");
  EXPECT_EQ(report.divergence->field, "stage_ns");
}

TEST(TraceDiff, ModeDivergenceNamesLadder) {
  const Trace trace = sample_trace();
  auto frames = trace.frames;
  frames[1].mode_after = serving::ServingMode::kSensorHold;
  const ReplayReport report = compare(trace, frames, trace.health);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.divergence->stage, "ladder");
  EXPECT_EQ(report.divergence->field, "mode_after");
  EXPECT_EQ(report.divergence->recorded, "vbp+mse");
  EXPECT_EQ(report.divergence->replayed, "sensor-hold");
}

TEST(TraceDiff, MonitorAndBreakerDivergencesNameTheirLayers) {
  const Trace trace = sample_trace();
  auto frames = trace.frames;
  frames[0].monitor_state = core::MonitorState::kFallback;
  ReplayReport report = compare(trace, frames, trace.health);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.divergence->stage, "monitor");
  EXPECT_EQ(report.divergence->field, "monitor_state");

  frames = trace.frames;
  frames[1].breaker_after = serving::BreakerState::kHalfOpen;
  report = compare(trace, frames, trace.health);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.divergence->stage, "breaker");
  EXPECT_EQ(report.divergence->field, "breaker_after");
}

TEST(TraceDiff, FirstDivergenceWinsAcrossFrames) {
  // Perturb frame 0 (late field) and frame 1 (early field): the frame-0
  // divergence must be the one reported.
  const Trace trace = sample_trace();
  auto frames = trace.frames;
  frames[0].breaker_after = serving::BreakerState::kOpen;
  frames[1].sensor_bad = true;
  const ReplayReport report = compare(trace, frames, trace.health);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.divergence->frame, 0);
  EXPECT_EQ(report.divergence->stage, "breaker");
}

TEST(TraceDiff, FrameCountMismatchIsRunLevel) {
  const Trace trace = sample_trace();
  auto frames = trace.frames;
  frames.pop_back();
  const ReplayReport report = compare(trace, frames, trace.health);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.divergence->frame, -1);
  EXPECT_EQ(report.divergence->stage, "supervisor");
  EXPECT_EQ(report.divergence->field, "frame_count");
  EXPECT_NE(report.format().find("run level"), std::string::npos);
}

TEST(TraceDiff, HealthCounterMismatchIsRunLevel) {
  const Trace trace = sample_trace();
  TraceHealth health = trace.health;
  health.breaker_trips += 1;
  const ReplayReport report = compare(trace, trace.frames, health);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.divergence->frame, -1);
  EXPECT_EQ(report.divergence->stage, "health");
  EXPECT_EQ(report.divergence->field, "breaker_trips");
}

TEST(TraceDiff, SwapDivergenceNamesCalibStage) {
  const Trace trace = sample_trace();
  auto frames = trace.frames;
  frames[1].swapped = false;
  ReplayReport report = compare(trace, frames, trace.health);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.divergence->frame, 1);
  EXPECT_EQ(report.divergence->stage, "calib");
  EXPECT_EQ(report.divergence->field, "swapped");

  frames = trace.frames;
  frames[1].epoch_after += 1;
  report = compare(trace, frames, trace.health);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.divergence->frame, 1);
  EXPECT_EQ(report.divergence->stage, "calib");
  EXPECT_EQ(report.divergence->field, "epoch_after");
}

TEST(TraceDiff, DriftHealthCountersAreRunLevel) {
  const Trace trace = sample_trace();
  TraceHealth health = trace.health;
  health.drift_detections += 1;
  ReplayReport report = compare(trace, trace.frames, health);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.divergence->frame, -1);
  EXPECT_EQ(report.divergence->stage, "health");
  EXPECT_EQ(report.divergence->field, "drift_detections");

  health = trace.health;
  health.threshold_swaps += 1;
  report = compare(trace, trace.frames, health);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.divergence->stage, "health");
  EXPECT_EQ(report.divergence->field, "threshold_swaps");
}

TEST(TraceDiff, StreamIdDivergenceNamesClusterStage) {
  // A replay that routes a frame to the wrong stream is a batching bug, not
  // a scoring bug — the diff must attribute it to the cluster layer.
  const Trace trace = sample_trace();
  auto frames = trace.frames;
  frames[1].stream_id = 0;
  const ReplayReport report = compare(trace, frames, trace.health);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.divergence->frame, 1);
  EXPECT_EQ(report.divergence->stage, "cluster");
  EXPECT_EQ(report.divergence->field, "stream_id");
}

TEST(TraceDiff, NanScoresCompareEqualBitExact) {
  // Unscored frames carry NaN scores; NaN == NaN for trace purposes, so an
  // all-held recording replays conformant.
  Trace trace;
  trace.spec.frames = 1;
  TraceFrame frame;
  frame.frame_index = 0;
  trace.frames.push_back(frame);  // score and steering default to NaN
  trace.health.frames_total = 1;
  const ReplayReport report = compare(trace, trace.frames, trace.health);
  EXPECT_TRUE(report.ok()) << report.format();
}

}  // namespace
}  // namespace salnov::trace
