// Tests for the parallel execution layer: parallel_for semantics, the
// thread-count determinism guarantee along the VBP -> autoencoder -> SSIM
// scoring path, and the SSIM variance-clamp regression.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "core/novelty_detector.hpp"
#include "driving/pilotnet.hpp"
#include "driving/steering_trainer.hpp"
#include "metrics/ecdf.hpp"
#include "metrics/ssim.hpp"
#include "parallel/parallel_for.hpp"
#include "roadsim/dataset.hpp"
#include "roadsim/outdoor_generator.hpp"
#include "tensor/gemm.hpp"
#include "tensor/rng.hpp"

namespace salnov {
namespace {

/// Restores automatic thread resolution when a test scope ends, so thread
/// overrides never leak across tests.
struct ThreadGuard {
  ~ThreadGuard() { parallel::set_num_threads(0); }
};

// --- parallel_for semantics ------------------------------------------------

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadGuard guard;
  parallel::set_num_threads(4);
  std::vector<std::atomic<int>> hits(103);
  for (auto& h : hits) h.store(0);
  parallel::parallel_for(0, 103, 7, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) hits[static_cast<size_t>(i)].fetch_add(1);
  });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool called = false;
  parallel::parallel_for(5, 5, 1, [&](int64_t, int64_t) { called = true; });
  parallel::parallel_for(7, 3, 1, [&](int64_t, int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, InvalidGrainThrows) {
  EXPECT_THROW(parallel::parallel_for(0, 4, 0, [](int64_t, int64_t) {}), std::invalid_argument);
}

TEST(ParallelFor, ChunkBoundariesFollowGrainNotThreadCount) {
  ThreadGuard guard;
  for (int threads : {1, 3}) {
    parallel::set_num_threads(threads);
    std::vector<std::pair<int64_t, int64_t>> chunks(4, {-1, -1});
    parallel::parallel_for(2, 12, 3, [&](int64_t begin, int64_t end) {
      chunks[static_cast<size_t>((begin - 2) / 3)] = {begin, end};
    });
    const std::vector<std::pair<int64_t, int64_t>> expected = {{2, 5}, {5, 8}, {8, 11}, {11, 12}};
    EXPECT_EQ(chunks, expected) << "threads=" << threads;
  }
}

TEST(ParallelFor, PropagatesExceptions) {
  ThreadGuard guard;
  parallel::set_num_threads(4);
  EXPECT_THROW(parallel::parallel_for(0, 64, 1,
                                      [&](int64_t begin, int64_t) {
                                        if (begin == 13) throw std::runtime_error("chunk 13");
                                      }),
               std::runtime_error);
  // The pool must still be usable after an exception drained a job.
  std::atomic<int64_t> total{0};
  parallel::parallel_for(0, 10, 1, [&](int64_t b, int64_t e) { total.fetch_add(e - b); });
  EXPECT_EQ(total.load(), 10);
}

TEST(ParallelFor, NestedCallsRunInline) {
  ThreadGuard guard;
  parallel::set_num_threads(4);
  std::vector<std::atomic<int>> hits(64);
  for (auto& h : hits) h.store(0);
  parallel::parallel_for(0, 8, 1, [&](int64_t ob, int64_t oe) {
    for (int64_t o = ob; o < oe; ++o) {
      EXPECT_TRUE(parallel::in_parallel_region());
      parallel::parallel_for(0, 8, 1, [&](int64_t ib, int64_t ie) {
        for (int64_t i = ib; i < ie; ++i) hits[static_cast<size_t>(o * 8 + i)].fetch_add(1);
      });
    }
  });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelFor, SetNumThreadsRejectsNegative) {
  EXPECT_THROW(parallel::set_num_threads(-1), std::invalid_argument);
  EXPECT_GE(parallel::num_threads(), 1);
}

// --- gemm: empty dimensions and thread-count invariance --------------------

TEST(GemmParallel, EmptyDimensionsAreSafe) {
  gemm(nullptr, nullptr, nullptr, 0, 0, 0);
  gemm(nullptr, nullptr, nullptr, 0, 5, 3);
  gemm_accumulate(nullptr, nullptr, nullptr, 4, 0, 3);
  gemm_nt_accumulate(nullptr, nullptr, nullptr, 0, 0, 7);
  gemm_tn_accumulate(nullptr, nullptr, nullptr, 3, 4, 0);

  // k == 0 with a non-empty output: C := A[m,0] x B[0,n] must be zeroed.
  std::vector<float> c(6, 42.0f);
  gemm(nullptr, nullptr, c.data(), 2, 3, 0);
  for (float v : c) EXPECT_EQ(v, 0.0f);

  // ...but the accumulate variant adds nothing and leaves C alone.
  std::vector<float> c2(6, 42.0f);
  gemm_accumulate(nullptr, nullptr, c2.data(), 2, 3, 0);
  for (float v : c2) EXPECT_EQ(v, 42.0f);
}

TEST(GemmParallel, BitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  Rng rng(7);
  const int64_t m = 96, n = 48, k = 64;
  const Tensor a = rng.uniform_tensor({m, k}, -1.0, 1.0);
  const Tensor b = rng.uniform_tensor({k, n}, -1.0, 1.0);

  parallel::set_num_threads(1);
  Tensor c1({m, n});
  gemm(a.data(), b.data(), c1.data(), m, n, k);
  Tensor t1({m, n});
  gemm_tn_accumulate(a.data(), b.data(), t1.data(), k, n, m);

  parallel::set_num_threads(4);
  Tensor c4({m, n});
  gemm(a.data(), b.data(), c4.data(), m, n, k);
  Tensor t4({m, n});
  gemm_tn_accumulate(a.data(), b.data(), t4.data(), k, n, m);

  EXPECT_EQ(0, std::memcmp(c1.data(), c4.data(), sizeof(float) * m * n));
  EXPECT_EQ(0, std::memcmp(t1.data(), t4.data(), sizeof(float) * m * n));
}

TEST(GemmParallel, SimdBitIdenticalAcrossThreadCounts) {
  // The determinism contract holds per kernel: the SIMD path partitions rows
  // by a fixed grain too, so its results (packed or not) cannot depend on
  // the thread count.
  if (!gemm_simd_available()) GTEST_SKIP() << "SIMD kernel not available on this CPU";
  ThreadGuard guard;
  const GemmKernel saved = active_gemm_kernel();
  set_gemm_kernel(GemmKernel::kSimd);

  Rng rng(13);
  const int64_t m = 96, n = 48, k = 64;
  const Tensor a = rng.uniform_tensor({m, k}, -1.0, 1.0);
  const Tensor b = rng.uniform_tensor({k, n}, -1.0, 1.0);
  const PackedMatrix pb = pack_b_panels(b.data(), k, n);

  parallel::set_num_threads(1);
  Tensor c1({m, n});
  gemm(a.data(), b.data(), c1.data(), m, n, k);
  Tensor p1({m, n});
  gemm_ex(a.data(), b.data(), p1.data(), m, n, k, GemmEpilogue{}, nullptr, &pb);

  parallel::set_num_threads(4);
  Tensor c4({m, n});
  gemm(a.data(), b.data(), c4.data(), m, n, k);
  Tensor p4({m, n});
  gemm_ex(a.data(), b.data(), p4.data(), m, n, k, GemmEpilogue{}, nullptr, &pb);

  EXPECT_EQ(0, std::memcmp(c1.data(), c4.data(), sizeof(float) * m * n));
  EXPECT_EQ(0, std::memcmp(p1.data(), p4.data(), sizeof(float) * m * n));
  EXPECT_EQ(0, std::memcmp(c1.data(), p1.data(), sizeof(float) * m * n))
      << "packed path diverged from unpacked";

  set_gemm_kernel(saved);
}

// --- SSIM: variance clamp regression and thread invariance -----------------

TEST(SsimClamp, ConstantWindowsAgreeWithReference) {
  // Near-constant images provoke catastrophic cancellation in the naive
  // variance; before the clamp, ssim() (SAT path, clamped) and
  // ssim_reference() (window path, unclamped) could disagree and the
  // reference could exceed 1.
  for (float level : {0.1f, 0.5f, 0.73f, 1.0f}) {
    Image x(16, 16), y(16, 16);
    x.tensor().fill(level);
    y.tensor().fill(level);
    SsimOptions options;
    options.window = 8;
    options.stride = 4;
    const double fast = ssim(x, y, options);
    const double reference = ssim_reference(x, y, options);
    EXPECT_DOUBLE_EQ(fast, reference) << "level " << level;
    EXPECT_LE(reference, 1.0 + 1e-12) << "level " << level;
    EXPECT_NEAR(reference, 1.0, 1e-9) << "identical images must score ~1";
  }
}

TEST(SsimClamp, NearConstantWindowStatsVarianceNonNegative) {
  Image x(8, 8), y(8, 8);
  x.tensor().fill(0.1f);
  y.tensor().fill(0.1f);
  const WindowStats stats = window_stats(x, y, 0, 0, 8);
  EXPECT_GE(stats.var_x, 0.0);
  EXPECT_GE(stats.var_y, 0.0);
}

TEST(SsimParallel, BitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  Rng rng(11);
  const Image x(60, 160, rng.uniform_tensor({60 * 160}, 0.0, 1.0));
  const Image y(60, 160, rng.uniform_tensor({60 * 160}, 0.0, 1.0));
  SsimOptions options;

  parallel::set_num_threads(1);
  const double s1 = ssim(x, y, options);
  parallel::set_num_threads(4);
  const double s4 = ssim(x, y, options);
  EXPECT_EQ(s1, s4);  // exact, not approximate
}

// --- quantile helper -------------------------------------------------------

TEST(QuantileHelper, CdfOverloadMatchesVectorOverload) {
  const std::vector<double> samples = {9.0, 1.0, 5.0, 3.0, 7.0};
  const EmpiricalCdf cdf(samples);
  for (double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(quantile(samples, q), quantile(cdf, q));
  }
}

// --- full pipeline: detector scores and dataset generation -----------------

TEST(DetectorParallel, ScoresBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  constexpr int64_t kH = 24, kW = 48;

  parallel::set_num_threads(1);
  Rng rng(123);
  roadsim::OutdoorSceneGenerator outdoor;
  const auto train = roadsim::DrivingDataset::generate(outdoor, 24, kH, kW, rng);
  const auto probe = roadsim::DrivingDataset::generate(outdoor, 12, kH, kW, rng);

  nn::Sequential steering = driving::build_pilotnet(driving::PilotNetConfig::tiny(kH, kW), rng);

  core::NoveltyDetectorConfig config;
  config.height = kH;
  config.width = kW;
  config.preprocessing = core::Preprocessing::kVbp;
  config.score = core::ReconstructionScore::kSsim;
  config.autoencoder = core::AutoencoderConfig::tiny(kH, kW);
  config.train_epochs = 3;

  core::NoveltyDetector detector(config);
  detector.attach_steering_model(&steering);
  Rng fit_rng(7);
  detector.fit(train.images(), fit_rng);

  const std::vector<double> serial = detector.scores(probe.images());

  parallel::set_num_threads(4);
  const std::vector<double> threaded = detector.scores(probe.images());

  ASSERT_EQ(serial.size(), threaded.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], threaded[i]) << "score " << i << " diverged across thread counts";
  }

  // And the batch API must agree with one-at-a-time scoring exactly.
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(threaded[i], detector.score(probe.images()[i]));
  }
}

TEST(DatasetParallel, GenerationBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  roadsim::OutdoorSceneGenerator outdoor;

  parallel::set_num_threads(1);
  Rng rng1(42);
  const auto ds1 = roadsim::DrivingDataset::generate(outdoor, 10, 30, 80, rng1);

  parallel::set_num_threads(4);
  Rng rng4(42);
  const auto ds4 = roadsim::DrivingDataset::generate(outdoor, 10, 30, 80, rng4);

  ASSERT_EQ(ds1.size(), ds4.size());
  for (int64_t i = 0; i < ds1.size(); ++i) {
    EXPECT_EQ(ds1.image(i).tensor(), ds4.image(i).tensor()) << "image " << i;
    EXPECT_EQ(ds1.steering(i), ds4.steering(i)) << "steering " << i;
  }
  // The caller RNG must end in the same state either way: follow-up draws
  // agree.
  EXPECT_EQ(rng1.next_u64(), rng4.next_u64());
}

}  // namespace
}  // namespace salnov
