// Unit tests for the scene generators and dataset container.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "roadsim/dataset.hpp"
#include "roadsim/indoor_generator.hpp"
#include "roadsim/outdoor_generator.hpp"
#include "roadsim/rasterizer.hpp"
#include "roadsim/scene.hpp"

namespace salnov::roadsim {
namespace {

TEST(Scene, SteeringFollowsCurvature) {
  SceneParams straight;
  EXPECT_DOUBLE_EQ(steering_for_scene(straight), 0.0);
  SceneParams right = straight;
  right.curvature = 0.5;
  EXPECT_GT(steering_for_scene(right), 0.0);
  SceneParams left = straight;
  left.curvature = -0.5;
  EXPECT_LT(steering_for_scene(left), 0.0);
}

TEST(Scene, SteeringCorrectsOffset) {
  SceneParams displaced;
  displaced.camera_offset = 0.5;  // car is right of center -> steer left
  EXPECT_LT(steering_for_scene(displaced), 0.0);
}

TEST(Scene, SteeringClampedToUnitRange) {
  SceneParams extreme;
  extreme.curvature = 1.0;
  extreme.camera_offset = -1.0;
  EXPECT_LE(steering_for_scene(extreme), 1.0);
  EXPECT_GE(steering_for_scene(extreme), -1.0);
}

TEST(RoadGeometryTest, DepthRunsZeroToOne) {
  SceneParams params;
  RoadGeometry geo(params, 100, 200);
  EXPECT_DOUBLE_EQ(geo.depth(geo.horizon_row()), 0.0);
  EXPECT_DOUBLE_EQ(geo.depth(99), 1.0);
  EXPECT_DOUBLE_EQ(geo.depth(0), 0.0);  // above horizon
}

TEST(RoadGeometryTest, StraightCenteredRoadIsCentered) {
  SceneParams params;  // zero curvature, zero offset
  RoadGeometry geo(params, 100, 200);
  EXPECT_NEAR(geo.center_x(99), 100.0, 1e-9);
  EXPECT_NEAR(geo.center_x(geo.horizon_row() + 10), 100.0, 1e-9);
}

TEST(RoadGeometryTest, CurvatureBendsTowardHorizon) {
  SceneParams params;
  params.curvature = 1.0;
  RoadGeometry geo(params, 100, 200);
  // Near the car the road is centered; near the horizon it is displaced.
  EXPECT_NEAR(geo.center_x(99), 100.0, 1.0);
  EXPECT_GT(geo.center_x(geo.horizon_row() + 1), 120.0);
}

TEST(RoadGeometryTest, WidthShrinksTowardHorizon) {
  SceneParams params;
  RoadGeometry geo(params, 100, 200);
  EXPECT_GT(geo.half_width(99), geo.half_width(geo.horizon_row() + 5));
  EXPECT_NEAR(geo.half_width(99), params.road_half_width * 200.0, 1e-6);
}

TEST(RoadGeometryTest, OnRoadAndEdgesConsistent) {
  SceneParams params;
  RoadGeometry geo(params, 100, 200);
  const int64_t row = 80;
  const auto center = static_cast<int64_t>(geo.center_x(row));
  EXPECT_TRUE(geo.on_road(row, center));
  const auto edge = static_cast<int64_t>(geo.center_x(row) + geo.half_width(row));
  EXPECT_TRUE(geo.on_edge(row, edge));
  EXPECT_FALSE(geo.on_road(geo.horizon_row() - 1, center));
}

TEST(RoadGeometryTest, CenterMarkingIsDashes) {
  SceneParams params;
  RoadGeometry geo(params, 200, 200);
  const auto center_col = static_cast<int64_t>(geo.center_x(150));
  int on = 0, off = 0;
  for (int64_t row = geo.horizon_row() + 1; row < 200; ++row) {
    const auto c = static_cast<int64_t>(geo.center_x(row));
    (geo.on_center_marking(row, c) ? on : off)++;
  }
  EXPECT_GT(on, 0);
  EXPECT_GT(off, 0);
  (void)center_col;
}

TEST(ValueNoiseTest, DeterministicAndInRange) {
  ValueNoise a(42), b(42), c(43);
  for (int i = 0; i < 50; ++i) {
    const double y = i * 1.7, x = i * 0.9;
    const double v = a.at(y, x, 10.0);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
    EXPECT_DOUBLE_EQ(v, b.at(y, x, 10.0));
  }
  EXPECT_NE(a.at(5.0, 5.0, 10.0), c.at(5.0, 5.0, 10.0));
}

TEST(ValueNoiseTest, SmoothAtFineScale) {
  ValueNoise noise(7);
  const double v1 = noise.at(10.0, 10.0, 20.0);
  const double v2 = noise.at(10.0, 10.5, 20.0);
  EXPECT_LT(std::abs(v1 - v2), 0.2);
}

TEST(OutdoorGenerator, ProducesValidSamples) {
  OutdoorSceneGenerator gen;
  Rng rng(1);
  const Sample s = gen.generate(rng);
  EXPECT_EQ(s.rgb.height(), gen.render_height());
  EXPECT_EQ(s.rgb.width(), gen.render_width());
  EXPECT_GE(s.steering, -1.0);
  EXPECT_LE(s.steering, 1.0);
  // Pixels are valid [0, 1] values.
  EXPECT_GE(s.rgb.tensor().min(), 0.0f);
  EXPECT_LE(s.rgb.tensor().max(), 1.0f);
}

TEST(OutdoorGenerator, DeterministicGivenSeed) {
  OutdoorSceneGenerator gen;
  Rng a(5), b(5);
  const Sample sa = gen.generate(a);
  const Sample sb = gen.generate(b);
  EXPECT_EQ(sa.rgb.tensor(), sb.rgb.tensor());
  EXPECT_DOUBLE_EQ(sa.steering, sb.steering);
}

TEST(OutdoorGenerator, ScenesVary) {
  OutdoorSceneGenerator gen;
  Rng rng(9);
  const Sample a = gen.generate(rng);
  const Sample b = gen.generate(rng);
  EXPECT_GT(Tensor::max_abs_diff(a.rgb.tensor(), b.rgb.tensor()), 0.05f);
}

TEST(OutdoorGenerator, SteeringMatchesParams) {
  OutdoorSceneGenerator gen;
  Rng rng(11);
  const Sample s = gen.generate(rng);
  EXPECT_DOUBLE_EQ(s.steering, steering_for_scene(s.params));
}

TEST(OutdoorGenerator, RoadDarkerThanEdgeLines) {
  OutdoorSceneGenerator gen;
  SceneParams params;
  params.detail_seed = 3;
  const Sample s = gen.render(params, 3);
  const RoadGeometry geo(params, gen.render_height(), gen.render_width());
  const int64_t row = gen.render_height() - 5;
  const auto center = static_cast<int64_t>(geo.center_x(row));
  const auto edge = static_cast<int64_t>(geo.center_x(row) + geo.half_width(row));
  const Image gray = s.rgb.to_grayscale();
  EXPECT_LT(gray(row, center + 8), gray(row, edge));
}

TEST(OutdoorGenerator, TooSmallConfigThrows) {
  OutdoorConfig config;
  config.height = 4;
  EXPECT_THROW(OutdoorSceneGenerator{config}, std::invalid_argument);
}

TEST(IndoorGenerator, ProducesValidSamples) {
  IndoorSceneGenerator gen;
  Rng rng(2);
  const Sample s = gen.generate(rng);
  EXPECT_EQ(s.rgb.height(), gen.render_height());
  EXPECT_GE(s.rgb.tensor().min(), 0.0f);
  EXPECT_LE(s.rgb.tensor().max(), 1.0f);
}

TEST(IndoorGenerator, StatisticallyDifferentFromOutdoor) {
  // The novel-class argument needs the two datasets to have different image
  // statistics; compare mean brightness variability across scenes.
  OutdoorSceneGenerator outdoor;
  IndoorSceneGenerator indoor;
  Rng rng(3);
  double outdoor_mean = 0.0, indoor_mean = 0.0;
  const int n = 10;
  for (int i = 0; i < n; ++i) {
    outdoor_mean += outdoor.generate(rng).rgb.to_grayscale().mean();
    indoor_mean += indoor.generate(rng).rgb.to_grayscale().mean();
  }
  EXPECT_GT(std::abs(outdoor_mean - indoor_mean) / n, 0.02);
}

TEST(IndoorGenerator, HorizonHigherThanOutdoor) {
  IndoorSceneGenerator indoor;
  OutdoorSceneGenerator outdoor;
  Rng rng(4);
  const Sample i = indoor.generate(rng);
  const Sample o = outdoor.generate(rng);
  EXPECT_GT(i.params.horizon_frac, o.params.horizon_frac - 0.05);
}

TEST(RelevanceMask, MarksEdgesOnly) {
  OutdoorSceneGenerator gen;
  SceneParams params;
  const Image mask = gen.relevance_mask(params, 60, 160);
  // Mask is binary, nonempty, and a small fraction of the image.
  double on = 0.0;
  for (int64_t i = 0; i < mask.numel(); ++i) {
    EXPECT_TRUE(mask.tensor()[i] == 0.0f || mask.tensor()[i] == 1.0f);
    on += mask.tensor()[i];
  }
  EXPECT_GT(on, 0.0);
  EXPECT_LT(on / static_cast<double>(mask.numel()), 0.35);
}

TEST(Dataset, GeneratePreprocessesToTargetSize) {
  OutdoorSceneGenerator gen;
  Rng rng(6);
  const DrivingDataset ds = DrivingDataset::generate(gen, 5, 60, 160, rng);
  EXPECT_EQ(ds.size(), 5);
  EXPECT_EQ(ds.image(0).height(), 60);
  EXPECT_EQ(ds.image(0).width(), 160);
  EXPECT_GE(ds.image(0).min(), 0.0f);
  EXPECT_LE(ds.image(0).max(), 1.0f);
}

TEST(Dataset, SplitPreservesTotal) {
  OutdoorSceneGenerator gen;
  Rng rng(7);
  const DrivingDataset ds = DrivingDataset::generate(gen, 10, 30, 80, rng);
  const auto [train, test] = ds.split(0.8, rng);
  EXPECT_EQ(train.size(), 8);
  EXPECT_EQ(test.size(), 2);
}

TEST(Dataset, SplitRejectsBadFraction) {
  OutdoorSceneGenerator gen;
  Rng rng(8);
  const DrivingDataset ds = DrivingDataset::generate(gen, 4, 30, 80, rng);
  EXPECT_THROW(ds.split(1.5, rng), std::invalid_argument);
}

TEST(Dataset, SampleWithoutReplacement) {
  OutdoorSceneGenerator gen;
  Rng rng(9);
  const DrivingDataset ds = DrivingDataset::generate(gen, 6, 30, 80, rng);
  const DrivingDataset sub = ds.sample(3, rng);
  EXPECT_EQ(sub.size(), 3);
  EXPECT_THROW(ds.sample(7, rng), std::invalid_argument);
}

TEST(Dataset, TensorViewsHaveRightShapes) {
  IndoorSceneGenerator gen;
  Rng rng(10);
  const DrivingDataset ds = DrivingDataset::generate(gen, 3, 24, 48, rng);
  EXPECT_EQ(ds.images_nchw().shape(), (Shape{3, 1, 24, 48}));
  EXPECT_EQ(ds.images_flat().shape(), (Shape{3, 24 * 48}));
  EXPECT_EQ(ds.steering_tensor().shape(), (Shape{3, 1}));
  EXPECT_NEAR(ds.steering_tensor()[1], static_cast<float>(ds.steering(1)), 1e-6f);
}

TEST(Dataset, AddRejectsMismatchedSize) {
  DrivingDataset ds;
  ds.add(Image(10, 10), 0.0, SceneParams{});
  EXPECT_THROW(ds.add(Image(5, 5), 0.0, SceneParams{}), std::invalid_argument);
}

}  // namespace
}  // namespace salnov::roadsim
