// Conformance suite for the golden-trace record/replay layer.
//
// Two families of tests live here:
//
//   * Fixture-local scenarios: a tiny detector is fitted in-process, traces
//     are recorded under the scalar GEMM kernel, and replays are required to
//     be bit-exact at 1 vs 4 threads and at the recording kernel, and
//     tolerance-conformant across kernels. Perturbation tests tamper with a
//     recorded trace and check the first-divergence report names the frame,
//     stage, and field.
//   * Golden replays: every *.trace checked into tests/golden/ (recorded by
//     tools/make_golden against tests/golden/pipeline.bin) is replayed under
//     the same matrix. These pin today's decision stream against future
//     refactors.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "core/monitor.hpp"
#include "core/novelty_detector.hpp"
#include "core/pipeline_io.hpp"
#include "driving/pilotnet.hpp"
#include "faults/fault_injector.hpp"
#include "image/transforms.hpp"
#include "parallel/parallel_for.hpp"
#include "roadsim/outdoor_generator.hpp"
#include "tensor/gemm.hpp"
#include "tensor/serialize.hpp"
#include "trace/trace.hpp"

namespace salnov::trace {
namespace {

constexpr int64_t kH = 16;
constexpr int64_t kW = 24;
constexpr int64_t kMs = 1'000'000;  // ns

/// Restores the ambient worker-thread override on scope exit.
struct ThreadGuard {
  ~ThreadGuard() { parallel::set_num_threads(0); }
};

/// Restores the GEMM kernel active at construction on scope exit.
struct KernelGuard {
  GemmKernel saved = active_gemm_kernel();
  ~KernelGuard() { set_gemm_kernel(saved); }
};

/// Fitted pipeline shared across the suite. The detector is trained on
/// outdoor roadsim frames resized to the serving resolution, so the nominal
/// scenario stream is in-distribution.
class ConformanceFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Record and fit under the scalar kernel: it is available everywhere,
    // so every machine reproduces the same weights and traces bit-for-bit.
    KernelGuard kernel;
    set_gemm_kernel(GemmKernel::kScalar);

    Rng rng(41);
    steering_ =
        new nn::Sequential(driving::build_pilotnet(driving::PilotNetConfig::tiny(kH, kW), rng));

    core::NoveltyDetectorConfig config;
    config.height = kH;
    config.width = kW;
    config.preprocessing = core::Preprocessing::kVbp;
    config.score = core::ReconstructionScore::kSsim;
    config.autoencoder = core::AutoencoderConfig::tiny(kH, kW);
    config.train_epochs = 10;
    detector_ = new core::NoveltyDetector(config);
    detector_->attach_steering_model(steering_);

    roadsim::OutdoorSceneGenerator generator;
    Rng frame_rng(101);
    std::vector<Image> train;
    for (int i = 0; i < 24; ++i) {
      const roadsim::Sample sample = generator.generate(frame_rng);
      train.push_back(resize_bilinear(sample.rgb.to_grayscale(), kH, kW));
    }
    detector_->fit(train, rng);
  }

  static void TearDownTestSuite() {
    delete detector_;
    detector_ = nullptr;
    delete steering_;
    steering_ = nullptr;
  }

  /// Shared knobs: tight 1 ms budgets (only injected stalls can overrun
  /// under the FakeClock) and short hysteresis windows so short runs still
  /// visit every policy state.
  static TraceRunSpec base_spec(int64_t frames) {
    TraceRunSpec spec;
    spec.dataset = "outdoor";
    spec.frame_seed = 2024;
    spec.fault_seed = 7;
    spec.frames = frames;
    spec.height = kH;
    spec.width = kW;
    spec.supervisor.stage_budget_ns = {kMs, kMs, kMs, kMs, kMs};
    spec.supervisor.frame_budget_ns = 1000 * kMs;
    spec.supervisor.breaker.failure_threshold = 3;
    spec.supervisor.breaker.open_frames = 4;
    spec.supervisor.demote_after_bad_frames = 1;
    spec.supervisor.promote_after_healthy_frames = 2;
    spec.supervisor.monitor.trigger_frames = 2;
    spec.supervisor.monitor.release_frames = 2;
    spec.supervisor.monitor.sensor_trigger_frames = 2;
    spec.supervisor.monitor.sensor_release_frames = 2;
    return spec;
  }

  static TraceRunSpec nominal_spec() { return base_spec(12); }

  /// Saliency stalls on frames 3..8 blow the 1 ms stage budget: the breaker
  /// trips after 2 failures, reopens on a failed probe while the stall
  /// persists, then a clean probe restores VBP+SSIM. (Threshold 2, not the
  /// default 3: with immediate demotion the ladder leaves the saliency rungs
  /// after two bad frames, and a breaker needing a third consecutive failure
  /// would never see it.)
  static TraceRunSpec stall_spec() {
    TraceRunSpec spec = base_spec(24);
    spec.supervisor.breaker.failure_threshold = 2;
    spec.stalls.push_back({/*stage=*/2, /*stall_ns=*/10 * kMs, /*first_frame=*/3,
                           /*last_frame=*/8, /*period=*/1});
    return spec;
  }

  /// A frozen camera on frames 4..8 drives the sensor-fault hysteresis;
  /// after recovery, salt-and-pepper frames 14..17 re-enter fallback via
  /// the novelty path.
  static TraceRunSpec sensor_spec() {
    TraceRunSpec spec = base_spec(24);
    spec.camera_faults.push_back(
        {faults::CameraFault::kFrozenFrame, /*severity=*/1.0, /*first=*/4, /*last=*/8,
         /*period=*/1});
    spec.camera_faults.push_back(
        {faults::CameraFault::kSaltPepper, /*severity=*/1.0, /*first=*/14, /*last=*/17,
         /*period=*/1});
    return spec;
  }

  static Trace record_scalar(const TraceRunSpec& spec) {
    KernelGuard kernel;
    set_gemm_kernel(GemmKernel::kScalar);
    return TraceRecorder::record(spec, *detector_, steering_);
  }

  static core::NoveltyDetector* detector_;
  static nn::Sequential* steering_;
};

core::NoveltyDetector* ConformanceFixture::detector_ = nullptr;
nn::Sequential* ConformanceFixture::steering_ = nullptr;

using Conformance = ConformanceFixture;

// ---------------------------------------------------------------------------
// Determinism matrix: threads x kernels.

TEST_F(Conformance, RecordingTwiceIsBitIdentical) {
  for (const TraceRunSpec& spec : {nominal_spec(), stall_spec(), sensor_spec()}) {
    const Trace first = record_scalar(spec);
    const Trace second = record_scalar(spec);
    const ReplayReport report = compare(first, second.frames, second.health);
    EXPECT_TRUE(report.ok()) << report.format();
    EXPECT_EQ(report.frames_compared, spec.frames);
  }
}

TEST_F(Conformance, ReplayIsBitExactAtFourThreads) {
  for (const TraceRunSpec& spec : {nominal_spec(), stall_spec(), sensor_spec()}) {
    const Trace recorded = record_scalar(spec);

    KernelGuard kernel;
    set_gemm_kernel(GemmKernel::kScalar);
    ThreadGuard threads;
    parallel::set_num_threads(4);
    const ReplayReport report = TraceReplayer::replay(recorded, *detector_, steering_);
    EXPECT_TRUE(report.ok()) << report.format();
  }
}

TEST_F(Conformance, ReplayIsBitExactAtOneThread) {
  const Trace recorded = record_scalar(stall_spec());

  KernelGuard kernel;
  set_gemm_kernel(GemmKernel::kScalar);
  ThreadGuard threads;
  parallel::set_num_threads(1);
  const ReplayReport report = TraceReplayer::replay(recorded, *detector_, steering_);
  EXPECT_TRUE(report.ok()) << report.format();
}

TEST_F(Conformance, CrossKernelReplayConformsWithinTolerance) {
  if (!gemm_simd_available()) GTEST_SKIP() << "no SIMD kernel on this CPU";
  for (const TraceRunSpec& spec : {nominal_spec(), stall_spec(), sensor_spec()}) {
    const Trace recorded = record_scalar(spec);

    KernelGuard kernel;
    set_gemm_kernel(GemmKernel::kSimd);
    ReplayOptions options;
    options.score_tolerance = 1e-6;
    const ReplayReport report = TraceReplayer::replay(recorded, *detector_, steering_, options);
    // Scores may round differently under FMA, but every discrete decision
    // (verdicts, modes, monitor states, counters) must still match exactly.
    EXPECT_TRUE(report.ok()) << report.format();
  }
}

// ---------------------------------------------------------------------------
// Scenario coverage: the recorded streams actually exercise the policy
// machinery the traces exist to pin down.

TEST_F(Conformance, StallScenarioTripsAndRecoversTheBreaker) {
  const Trace trace = record_scalar(stall_spec());
  EXPECT_GE(trace.health.breaker_trips, 1);
  EXPECT_GE(trace.health.step_downs, 1);
  EXPECT_GE(trace.health.probe_failures, 1);
  EXPECT_GE(trace.health.probe_successes, 1);
  EXPECT_GE(trace.health.promotions, 1);

  bool saw_degraded = false;
  bool saw_open = false;
  for (const TraceFrame& frame : trace.frames) {
    saw_degraded |= frame.mode == serving::ServingMode::kRawMse;
    saw_open |= frame.breaker_after == serving::BreakerState::kOpen;
  }
  EXPECT_TRUE(saw_degraded);
  EXPECT_TRUE(saw_open);
  // The run ends recovered: breaker closed, back on the primary rung.
  EXPECT_EQ(trace.frames.back().breaker_after, serving::BreakerState::kClosed);
  EXPECT_EQ(trace.frames.back().mode_after, serving::ServingMode::kVbpSsim);
}

TEST_F(Conformance, SensorScenarioVisitsBothFallbackPaths) {
  const Trace trace = record_scalar(sensor_spec());
  bool saw_sensor_fault = false;
  bool saw_novelty_fallback_after_recovery = false;
  for (const TraceFrame& frame : trace.frames) {
    if (frame.monitor_state == core::MonitorState::kSensorFault) saw_sensor_fault = true;
    if (saw_sensor_fault && frame.monitor_state == core::MonitorState::kFallback) {
      saw_novelty_fallback_after_recovery = true;
      EXPECT_EQ(frame.fallback_path, core::FallbackPath::kNovelty);
    }
  }
  EXPECT_TRUE(saw_sensor_fault);
  EXPECT_TRUE(saw_novelty_fallback_after_recovery);
  EXPECT_GE(trace.health.frames_sensor_bad, 2);
}

// ---------------------------------------------------------------------------
// Monitor hysteresis re-entry, re-driven from a replayed trace: feeding the
// recorded per-frame outcomes into a fresh NoveltyMonitor must reproduce the
// recorded state sequence, including the sensor-fault -> nominal -> novelty
// fallback re-entry.

TEST_F(Conformance, MonitorHysteresisReplaysFromRecordedTrace) {
  const TraceRunSpec spec = sensor_spec();
  const Trace trace = record_scalar(spec);

  core::NoveltyMonitor monitor(*detector_, spec.supervisor.monitor);
  for (const TraceFrame& frame : trace.frames) {
    SCOPED_TRACE("frame " + std::to_string(frame.frame_index));
    if (frame.sensor_bad) {
      // The exact fault tag doesn't move the hysteresis — only the fact
      // that the frame was screened out does.
      const core::MonitorUpdate u = monitor.update_sensor_bad(core::FrameFault::kNone, true);
      EXPECT_EQ(u.state, frame.monitor_state);
      EXPECT_EQ(u.fallback_path, frame.fallback_path);
    } else if (frame.abandoned) {
      // Abandoned frames never reach the monitor.
      EXPECT_EQ(monitor.state(), frame.monitor_state);
    } else if (frame.scored) {
      const core::MonitorUpdate u = monitor.update_scored(frame.score, frame.novel);
      EXPECT_EQ(u.state, frame.monitor_state);
      EXPECT_EQ(u.fallback_path, frame.fallback_path);
    } else if (frame.mode == serving::ServingMode::kSensorHold) {
      const core::MonitorUpdate u = monitor.update_sensor_bad(core::FrameFault::kNone, false);
      EXPECT_EQ(u.state, frame.monitor_state);
      EXPECT_EQ(u.fallback_path, frame.fallback_path);
    } else {
      // Pipeline-broken frames report the state without updating it.
      EXPECT_EQ(monitor.state(), frame.monitor_state);
    }
  }
}

// ---------------------------------------------------------------------------
// Round trips through the checked file format at the degenerate sizes.

TEST_F(Conformance, ZeroFrameRunRoundTripsAndReplays) {
  TraceRunSpec spec = base_spec(0);
  const Trace recorded = record_scalar(spec);
  EXPECT_TRUE(recorded.frames.empty());
  EXPECT_EQ(recorded.health.frames_total, 0);

  const std::string path =
      (std::filesystem::temp_directory_path() / "salnov_conformance_zero.trace").string();
  recorded.save_file(path);
  const Trace loaded = Trace::load_file(path);
  std::filesystem::remove(path);

  KernelGuard kernel;
  set_gemm_kernel(GemmKernel::kScalar);
  const ReplayReport report = TraceReplayer::replay(loaded, *detector_, steering_);
  EXPECT_TRUE(report.ok()) << report.format();
  EXPECT_EQ(report.frames_compared, 0);
}

TEST_F(Conformance, SingleFrameRunRoundTripsAndReplays) {
  TraceRunSpec spec = base_spec(1);
  const Trace recorded = record_scalar(spec);
  ASSERT_EQ(recorded.frames.size(), 1u);

  const std::string path =
      (std::filesystem::temp_directory_path() / "salnov_conformance_one.trace").string();
  recorded.save_file(path);
  const Trace loaded = Trace::load_file(path);
  std::filesystem::remove(path);

  KernelGuard kernel;
  set_gemm_kernel(GemmKernel::kScalar);
  const ReplayReport report = TraceReplayer::replay(loaded, *detector_, steering_);
  EXPECT_TRUE(report.ok()) << report.format();
  EXPECT_EQ(report.frames_compared, 1);
}

// ---------------------------------------------------------------------------
// Perturbation: a tampered trace must produce a first-divergence report
// naming the frame, the stage, and the field.

TEST_F(Conformance, PerturbedVerdictIsReportedWithFrameStageField) {
  Trace trace = record_scalar(nominal_spec());
  ASSERT_GE(trace.frames.size(), 3u);
  trace.frames[2].novel = !trace.frames[2].novel;

  KernelGuard kernel;
  set_gemm_kernel(GemmKernel::kScalar);
  const ReplayReport report = TraceReplayer::replay(trace, *detector_, steering_);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.divergence->frame, 2);
  EXPECT_EQ(report.divergence->stage, "score");
  EXPECT_EQ(report.divergence->field, "novel");
  EXPECT_NE(report.format().find("frame 2"), std::string::npos);
}

TEST_F(Conformance, PerturbedHealthCounterIsReportedAtRunLevel) {
  Trace trace = record_scalar(nominal_spec());
  trace.health.frames_scored += 1;

  KernelGuard kernel;
  set_gemm_kernel(GemmKernel::kScalar);
  const ReplayReport report = TraceReplayer::replay(trace, *detector_, steering_);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.divergence->frame, -1);
  EXPECT_EQ(report.divergence->stage, "health");
  EXPECT_EQ(report.divergence->field, "frames_scored");
}

// ---------------------------------------------------------------------------
// Golden replays: the traces checked into tests/golden, recorded by
// tools/make_golden against tests/golden/pipeline.bin, must replay with an
// empty diff at 1 vs 4 threads (bit-exact) and across GEMM kernels
// (tolerance-bounded floats, exact decisions).

std::vector<std::string> golden_trace_paths() {
  std::vector<std::string> paths;
  const std::filesystem::path dir = SALNOV_GOLDEN_DIR;
  if (!std::filesystem::is_directory(dir)) return paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".trace") paths.push_back(entry.path().string());
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

class GoldenReplay : public ::testing::Test {
 protected:
  static constexpr const char* pipeline_path() { return SALNOV_GOLDEN_DIR "/pipeline.bin"; }
};

// Goldens are checked into the repo; their absence is a broken checkout, not
// a reason to skip the conformance gate. (ASSERT_ must expand in the test
// body to abort the right function, hence a macro and not a helper.)
#define REQUIRE_GOLDENS()                                                              \
  ASSERT_TRUE(std::filesystem::exists(pipeline_path()))                                \
      << "no golden pipeline at " << pipeline_path() << " (record with make_golden)";  \
  ASSERT_FALSE(golden_trace_paths().empty())                                           \
      << "golden pipeline present but no .trace files in " SALNOV_GOLDEN_DIR

TEST_F(GoldenReplay, TracesMatchThePipelineTheyWereRecordedAgainst) {
  REQUIRE_GOLDENS();
  const std::string payload = load_file_checked(pipeline_path());
  const uint32_t crc = crc32(payload.data(), payload.size());
  for (const std::string& path : golden_trace_paths()) {
    SCOPED_TRACE(path);
    const Trace trace = Trace::load_file(path);
    EXPECT_EQ(trace.spec.pipeline_crc, crc);
    EXPECT_EQ(trace.spec.pipeline_bytes, static_cast<int64_t>(payload.size()));
  }
}

TEST_F(GoldenReplay, GoldensReplayBitExactAtOneAndFourThreads) {
  REQUIRE_GOLDENS();
  const core::LoadedPipeline pipeline = core::PipelineIo::load_file(pipeline_path());

  KernelGuard kernel;
  set_gemm_kernel(GemmKernel::kScalar);
  for (const std::string& path : golden_trace_paths()) {
    SCOPED_TRACE(path);
    const Trace trace = Trace::load_file(path);
    for (const int threads : {1, 4}) {
      ThreadGuard guard;
      parallel::set_num_threads(threads);
      const ReplayReport report =
          TraceReplayer::replay(trace, *pipeline.detector, pipeline.steering_model.get());
      EXPECT_TRUE(report.ok()) << "threads=" << threads << ": " << report.format();
      // Multi-stream traces carry spec.frames frames PER stream.
      const int64_t streams = std::max<int64_t>(trace.spec.cluster.streams, 1);
      EXPECT_EQ(report.frames_compared, trace.spec.frames * streams);
    }
  }
}

TEST_F(GoldenReplay, GoldensReplayAcrossGemmKernels) {
  REQUIRE_GOLDENS();
  if (!gemm_simd_available()) GTEST_SKIP() << "no SIMD kernel on this CPU";
  const core::LoadedPipeline pipeline = core::PipelineIo::load_file(pipeline_path());

  KernelGuard kernel;
  set_gemm_kernel(GemmKernel::kSimd);
  ReplayOptions options;
  options.score_tolerance = 1e-6;
  for (const std::string& path : golden_trace_paths()) {
    SCOPED_TRACE(path);
    const Trace trace = Trace::load_file(path);
    const ReplayReport report = TraceReplayer::replay(
        trace, *pipeline.detector, pipeline.steering_model.get(), options);
    EXPECT_TRUE(report.ok()) << report.format();
  }
}

}  // namespace
}  // namespace salnov::trace
