// Parameterized property sweeps over the nn substrate: gradient correctness
// for every layer configuration in a grid, optimizer convergence for every
// optimizer, and SSIM-loss gradients across window/stride combinations.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/optimizer.hpp"
#include "nn/pooling.hpp"
#include "nn/ssim_loss.hpp"
#include "test_util.hpp"

namespace salnov::nn {
namespace {

// ---------------------------------------------------------------------------
// Conv2d gradient grid: (in_channels, out_channels, kernel, stride, padding).

using ConvCase = std::tuple<int, int, int, int, int>;

class ConvGradientSweep : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvGradientSweep, AnalyticMatchesNumeric) {
  const auto [in_c, out_c, kernel, stride, padding] = GetParam();
  Rng rng(static_cast<uint64_t>(in_c * 1000 + out_c * 100 + kernel * 10 + stride));
  Conv2dConfig config;
  config.in_channels = in_c;
  config.out_channels = out_c;
  config.kernel_h = config.kernel_w = kernel;
  config.stride = stride;
  config.padding = padding;
  Conv2d conv(config, rng);
  // Input large enough for any config in the grid.
  const Tensor input = rng.uniform_tensor({2, in_c, 7, 8}, -1.0, 1.0);
  test::check_layer_gradients(conv, input, rng);
}

std::string conv_case_name(const ::testing::TestParamInfo<ConvCase>& info) {
  const auto [in_c, out_c, kernel, stride, padding] = info.param;
  return "i" + std::to_string(in_c) + "o" + std::to_string(out_c) + "k" + std::to_string(kernel) +
         "s" + std::to_string(stride) + "p" + std::to_string(padding);
}

INSTANTIATE_TEST_SUITE_P(Grid, ConvGradientSweep,
                         ::testing::Values(ConvCase{1, 1, 1, 1, 0}, ConvCase{1, 2, 3, 1, 0},
                                           ConvCase{2, 3, 3, 1, 1}, ConvCase{1, 2, 3, 2, 0},
                                           ConvCase{2, 2, 5, 2, 0}, ConvCase{3, 1, 3, 1, 1},
                                           ConvCase{1, 4, 2, 2, 1}, ConvCase{2, 2, 3, 3, 1}),
                         conv_case_name);

// ---------------------------------------------------------------------------
// Dense gradient grid.

using DenseCase = std::tuple<int, int, int>;  // batch, in, out

class DenseGradientSweep : public ::testing::TestWithParam<DenseCase> {};

TEST_P(DenseGradientSweep, AnalyticMatchesNumeric) {
  const auto [batch, in_f, out_f] = GetParam();
  Rng rng(static_cast<uint64_t>(batch * 100 + in_f * 10 + out_f));
  Dense dense(in_f, out_f, rng);
  const Tensor input = rng.uniform_tensor({batch, in_f}, -1.0, 1.0);
  test::check_layer_gradients(dense, input, rng);
}

std::string dense_case_name(const ::testing::TestParamInfo<DenseCase>& info) {
  return "b" + std::to_string(std::get<0>(info.param)) + "i" +
         std::to_string(std::get<1>(info.param)) + "o" + std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(Grid, DenseGradientSweep,
                         ::testing::Values(DenseCase{1, 1, 1}, DenseCase{1, 5, 3},
                                           DenseCase{3, 2, 7}, DenseCase{4, 6, 2},
                                           DenseCase{2, 8, 8}),
                         dense_case_name);

// ---------------------------------------------------------------------------
// Activation gradient sweep (factory-based).

struct ActivationCase {
  const char* name;
  std::unique_ptr<Layer> (*make)();
};

class ActivationGradientSweep : public ::testing::TestWithParam<ActivationCase> {};

TEST_P(ActivationGradientSweep, AnalyticMatchesNumeric) {
  Rng rng(99);
  auto layer = GetParam().make();
  // Inputs away from zero so the ReLU kink does not poison the check.
  Tensor input = rng.uniform_tensor({3, 6}, 0.15, 1.2);
  for (int64_t i = 0; i < input.numel(); i += 3) input[i] = -input[i];
  test::check_layer_gradients(*layer, input, rng);
}

INSTANTIATE_TEST_SUITE_P(
    All, ActivationGradientSweep,
    ::testing::Values(ActivationCase{"relu", [] { return std::unique_ptr<Layer>(new ReLU); }},
                      ActivationCase{"sigmoid", [] { return std::unique_ptr<Layer>(new Sigmoid); }},
                      ActivationCase{"tanh", [] { return std::unique_ptr<Layer>(new Tanh); }}),
    [](const ::testing::TestParamInfo<ActivationCase>& info) { return info.param.name; });

// ---------------------------------------------------------------------------
// Optimizer convergence sweep: each optimizer must minimize a quadratic.

struct OptimizerCase {
  const char* name;
  std::unique_ptr<Optimizer> (*make)();
  int steps;
};

class OptimizerConvergenceSweep : public ::testing::TestWithParam<OptimizerCase> {};

TEST_P(OptimizerConvergenceSweep, MinimizesQuadratic) {
  auto optimizer = GetParam().make();
  Parameter p("w", Tensor({2}, {5.0f, -4.0f}));
  // f(w) = (w0 - 1)^2 + 2 (w1 + 2)^2 ; unique minimum at (1, -2).
  for (int i = 0; i < GetParam().steps; ++i) {
    p.grad = Tensor({2}, {2.0f * (p.value[0] - 1.0f), 4.0f * (p.value[1] + 2.0f)});
    optimizer->step({&p});
  }
  EXPECT_NEAR(p.value[0], 1.0f, 0.1f);
  EXPECT_NEAR(p.value[1], -2.0f, 0.1f);
}

INSTANTIATE_TEST_SUITE_P(
    All, OptimizerConvergenceSweep,
    ::testing::Values(
        OptimizerCase{"sgd", [] { return std::unique_ptr<Optimizer>(new Sgd(0.05)); }, 400},
        OptimizerCase{"momentum",
                      [] { return std::unique_ptr<Optimizer>(new Momentum(0.02, 0.9)); }, 400},
        OptimizerCase{"adam", [] { return std::unique_ptr<Optimizer>(new Adam(0.1)); }, 400}),
    [](const ::testing::TestParamInfo<OptimizerCase>& info) { return info.param.name; });

// ---------------------------------------------------------------------------
// SSIM loss gradient across window/stride combinations.

using SsimCase = std::tuple<int, int>;  // window, stride

class SsimLossSweep : public ::testing::TestWithParam<SsimCase> {};

TEST_P(SsimLossSweep, GradientMatchesNumeric) {
  const auto [window, stride] = GetParam();
  Rng rng(static_cast<uint64_t>(window * 10 + stride));
  const int64_t h = 14, w = 15;
  SsimOptions options;
  options.window = window;
  options.stride = stride;
  SsimLoss loss(h, w, options);
  const Tensor x = rng.uniform_tensor({1, h * w}, 0.0, 1.0);
  const Tensor y = rng.uniform_tensor({1, h * w}, 0.0, 1.0);
  test::check_loss_gradient(loss, y, x, 1e-3, 5e-3);
}

TEST_P(SsimLossSweep, PerfectReconstructionGivesZeroLossAndZeroGradient) {
  const auto [window, stride] = GetParam();
  Rng rng(static_cast<uint64_t>(window * 100 + stride));
  const int64_t h = 14, w = 15;
  SsimOptions options;
  options.window = window;
  options.stride = stride;
  SsimLoss loss(h, w, options);
  const Tensor x = rng.uniform_tensor({2, h * w}, 0.05, 0.95);
  EXPECT_NEAR(loss.value(x, x), 0.0, 1e-9);
  const Tensor g = loss.gradient(x, x);
  // At the optimum the gradient must vanish.
  for (int64_t i = 0; i < g.numel(); ++i) EXPECT_NEAR(g[i], 0.0f, 1e-5f);
}

INSTANTIATE_TEST_SUITE_P(Grid, SsimLossSweep,
                         ::testing::Values(SsimCase{3, 1}, SsimCase{5, 1}, SsimCase{7, 2},
                                           SsimCase{11, 1}, SsimCase{11, 3}, SsimCase{13, 5}),
                         [](const ::testing::TestParamInfo<SsimCase>& info) {
                           return "w" + std::to_string(std::get<0>(info.param)) + "s" +
                                  std::to_string(std::get<1>(info.param));
                         });

// ---------------------------------------------------------------------------
// MaxPool gradient sweep over kernel/stride.

using PoolCase = std::tuple<int, int>;

class PoolGradientSweep : public ::testing::TestWithParam<PoolCase> {};

TEST_P(PoolGradientSweep, AnalyticMatchesNumeric) {
  const auto [kernel, stride] = GetParam();
  Rng rng(static_cast<uint64_t>(kernel * 10 + stride));
  MaxPool2d pool(kernel, stride);
  // Distinct deterministic values avoid argmax ties.
  Tensor input({1, 2, 6, 6});
  for (int64_t i = 0; i < input.numel(); ++i) {
    input[i] = static_cast<float>((i * 6367) % 131) / 131.0f;
  }
  test::check_layer_gradients(pool, input, rng);
}

INSTANTIATE_TEST_SUITE_P(Grid, PoolGradientSweep,
                         ::testing::Values(PoolCase{2, 2}, PoolCase{3, 3}, PoolCase{2, 1},
                                           PoolCase{3, 2}),
                         [](const ::testing::TestParamInfo<PoolCase>& info) {
                           return "k" + std::to_string(std::get<0>(info.param)) + "s" +
                                  std::to_string(std::get<1>(info.param));
                         });

}  // namespace
}  // namespace salnov::nn
