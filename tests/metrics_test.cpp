// Unit tests for metrics: MSE, SSIM, histograms, ECDF, ROC/AUC.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "image/transforms.hpp"
#include "metrics/ecdf.hpp"
#include "metrics/histogram.hpp"
#include "metrics/mse.hpp"
#include "metrics/roc.hpp"
#include "metrics/ssim.hpp"
#include "tensor/rng.hpp"

namespace salnov {
namespace {

Image noise_image(int64_t h, int64_t w, uint64_t seed) {
  Rng rng(seed);
  Image img(h, w);
  for (int64_t i = 0; i < img.numel(); ++i) {
    img.tensor()[i] = static_cast<float>(rng.uniform());
  }
  return img;
}

TEST(Mse, ZeroForIdenticalTensors) {
  Tensor t({4}, {1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(mse(t, t), 0.0);
}

TEST(Mse, KnownValue) {
  Tensor a({2}, {0, 0});
  Tensor b({2}, {3, 4});
  EXPECT_DOUBLE_EQ(mse(a, b), (9.0 + 16.0) / 2.0);
}

TEST(Mse, ShapeMismatchThrows) { EXPECT_THROW(mse(Tensor({2}), Tensor({3})), std::invalid_argument); }

TEST(Mse, EmptyThrows) { EXPECT_THROW(mse(Tensor(Shape{0}), Tensor(Shape{0})), std::invalid_argument); }

TEST(Mse, Scale255MatchesUnitMse) {
  const Image a = noise_image(12, 12, 1);
  const Image b = noise_image(12, 12, 2);
  EXPECT_NEAR(mse_255(a, b), mse(a, b) * 255.0 * 255.0, 1e-9);
}

TEST(Ssim, IdenticalImagesScoreOne) {
  const Image img = noise_image(16, 20, 3);
  EXPECT_NEAR(ssim(img, img), 1.0, 1e-9);
}

TEST(Ssim, Symmetric) {
  const Image a = noise_image(16, 16, 4);
  const Image b = noise_image(16, 16, 5);
  EXPECT_NEAR(ssim(a, b), ssim(b, a), 1e-12);
}

TEST(Ssim, RangeWithinMinusOneToOne) {
  const Image a = noise_image(14, 14, 6);
  Image inverted = a;
  inverted.tensor().apply([](float v) { return 1.0f - v; });
  const double s = ssim(a, inverted);
  EXPECT_GE(s, -1.0);
  EXPECT_LE(s, 1.0);
  EXPECT_LT(s, 0.1);  // anti-correlated content scores low
}

TEST(Ssim, UnrelatedImagesScoreNearZero) {
  const Image a = noise_image(22, 22, 7);
  const Image b = noise_image(22, 22, 8);
  EXPECT_LT(std::abs(ssim(a, b)), 0.25);
}

TEST(Ssim, BrightnessShiftScoresHigherThanNoiseAtEqualMse) {
  // The paper's Fig. 3 argument: engineer noise and brightness to the same
  // pixel-wise MSE; SSIM must rank the brightness-shifted image as far more
  // similar than the noisy one. The effect requires a mostly smooth base
  // image (like a road scene), where noise dominates the local structure.
  Image base(40, 60);
  for (int64_t y = 0; y < 40; ++y) {
    for (int64_t x = 0; x < 60; ++x) {
      base(y, x) = 0.3f + 0.4f * static_cast<float>(x + y) / 98.0f;
    }
  }
  const double target_mse = 90.0;
  const double delta = calibrate_brightness_for_mse(base, target_mse);
  Rng rng(9);
  const double sigma = calibrate_noise_for_mse(base, target_mse, rng);
  Rng replay(9);
  const Image brightened = adjust_brightness(base, delta);
  const Image noisy = add_gaussian_noise(base, sigma, replay);

  EXPECT_NEAR(mse_255(base, brightened), mse_255(base, noisy), 25.0);
  EXPECT_GT(ssim(base, brightened), ssim(base, noisy) + 0.2);
}

TEST(Ssim, SizeMismatchThrows) {
  EXPECT_THROW(ssim(noise_image(16, 16, 1), noise_image(16, 18, 1)), std::invalid_argument);
}

TEST(Ssim, ImageSmallerThanWindowThrows) {
  EXPECT_THROW(ssim(noise_image(8, 8, 1), noise_image(8, 8, 2)), std::invalid_argument);
}

TEST(Ssim, BadOptionsThrow) {
  SsimOptions options;
  options.stride = 0;
  EXPECT_THROW(ssim(noise_image(16, 16, 1), noise_image(16, 16, 2), options), std::invalid_argument);
}

TEST(Ssim, StrideReducesWindowCountButNotMuchTheValue) {
  const Image a = noise_image(32, 32, 10);
  Image b = a;
  Rng rng(11);
  b = add_gaussian_noise(b, 0.05, rng);
  SsimOptions dense;
  SsimOptions strided;
  strided.stride = 4;
  EXPECT_NEAR(ssim(a, b, dense), ssim(a, b, strided), 0.05);
}

TEST(Ssim, MapHasExpectedShape) {
  const Image a = noise_image(20, 30, 12);
  const Image map = ssim_map(a, a);
  EXPECT_EQ(map.height(), 20 - 11 + 1);
  EXPECT_EQ(map.width(), 30 - 11 + 1);
  EXPECT_NEAR(map(0, 0), 1.0f, 1e-6f);
}

TEST(Ssim, WindowStatsMatchDirectComputation) {
  const Image x = noise_image(12, 12, 13);
  const Image y = noise_image(12, 12, 14);
  const WindowStats s = window_stats(x, y, 1, 1, 11);
  double mu_x = 0.0;
  for (int64_t dy = 0; dy < 11; ++dy) {
    for (int64_t dx = 0; dx < 11; ++dx) mu_x += x(1 + dy, 1 + dx);
  }
  mu_x /= 121.0;
  EXPECT_NEAR(s.mu_x, mu_x, 1e-9);
  EXPECT_GE(s.var_x, 0.0);
  EXPECT_GE(s.var_y, 0.0);
}

TEST(Ssim, ConstantWindowsGiveOneWhenEqual) {
  Image a(12, 12);
  a.tensor().fill(0.5f);
  EXPECT_NEAR(ssim(a, a), 1.0, 1e-9);
}

TEST(Histogram, BinsAndCounts) {
  Histogram h(0.0, 1.0, 4);
  h.add(0.1);
  h.add(0.3);
  h.add(0.3);
  h.add(0.9);
  EXPECT_EQ(h.total(), 4);
  EXPECT_EQ(h.count(0), 1);
  EXPECT_EQ(h.count(1), 2);
  EXPECT_EQ(h.count(3), 1);
}

TEST(Histogram, OutOfRangeClampedToEdgeBins) {
  Histogram h(0.0, 1.0, 2);
  h.add(-5.0);
  h.add(7.0);
  EXPECT_EQ(h.count(0), 1);
  EXPECT_EQ(h.count(1), 1);
}

TEST(Histogram, BinCenters) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_NEAR(h.bin_center(0), 0.125, 1e-12);
  EXPECT_NEAR(h.bin_center(3), 0.875, 1e-12);
  EXPECT_THROW(h.bin_center(4), std::out_of_range);
}

TEST(Histogram, FrequencySumsToOne) {
  Histogram h(0.0, 1.0, 8);
  Rng rng(15);
  for (int i = 0; i < 100; ++i) h.add(rng.uniform());
  double total = 0.0;
  for (int64_t b = 0; b < h.bins(); ++b) total += h.frequency(b);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Histogram, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, AsciiContainsBars) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.25);
  h.add(0.25);
  const std::string art = h.ascii(10);
  EXPECT_NE(art.find('#'), std::string::npos);
}

TEST(DistributionOverlap, IdenticalSamplesOverlapFully) {
  std::vector<double> a{1, 2, 3, 4, 5};
  EXPECT_NEAR(distribution_overlap(a, a), 1.0, 1e-9);
}

TEST(DistributionOverlap, DisjointSamplesNoOverlap) {
  std::vector<double> a{1, 2, 3};
  std::vector<double> b{10, 11, 12};
  EXPECT_NEAR(distribution_overlap(a, b), 0.0, 1e-9);
}

TEST(DistributionOverlap, EmptyThrows) {
  std::vector<double> a{1};
  EXPECT_THROW(distribution_overlap(a, {}), std::invalid_argument);
}

TEST(Ecdf, CdfStepsThroughSamples) {
  EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.cdf(2.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.cdf(10.0), 1.0);
}

TEST(Ecdf, QuantileInterpolates) {
  EmpiricalCdf cdf({0.0, 1.0});
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 1.0);
}

TEST(Ecdf, QuantileOfSingleSample) {
  EmpiricalCdf cdf({7.0});
  EXPECT_DOUBLE_EQ(cdf.quantile(0.3), 7.0);
}

TEST(Ecdf, NinetyNinthPercentileNearTail) {
  std::vector<double> samples;
  for (int i = 0; i < 1000; ++i) samples.push_back(static_cast<double>(i));
  EXPECT_NEAR(quantile(samples, 0.99), 989.0, 1.0);
}

TEST(Ecdf, InvalidInputsThrow) {
  EXPECT_THROW(EmpiricalCdf({}), std::invalid_argument);
  EmpiricalCdf cdf({1.0});
  EXPECT_THROW(cdf.quantile(1.5), std::invalid_argument);
}

TEST(Ecdf, NonFiniteSamplesAreExcludedFromQuantileMath) {
  // Regression: a NaN inside std::sort is undefined behaviour (it breaks
  // strict weak ordering), and an Inf would silently stretch the tail. The
  // ECDF must drop non-finite samples before any order statistics.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EmpiricalCdf cdf({1.0, nan, 2.0, inf, 3.0, -inf, 4.0});
  ASSERT_EQ(cdf.samples().size(), 4u);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 4.0) << "Inf must not become the tail";
  EXPECT_DOUBLE_EQ(cdf.cdf(2.0), 0.5);
}

TEST(Ecdf, AllNonFiniteThrows) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(EmpiricalCdf({nan, nan}), std::invalid_argument);
}

TEST(Ecdf, SaveLoadRoundTripsExactly) {
  EmpiricalCdf cdf({0.25, -1.5, 3.75, 0.25});
  std::stringstream buffer;
  cdf.save(buffer);
  const EmpiricalCdf loaded = EmpiricalCdf::load(buffer);
  EXPECT_EQ(loaded.samples(), cdf.samples());
  EXPECT_DOUBLE_EQ(loaded.quantile(0.99), cdf.quantile(0.99));
}

TEST(Ecdf, MeanAndStddev) {
  std::vector<double> samples{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(samples), 5.0);
  EXPECT_NEAR(stddev(samples), 2.138, 0.01);
  EXPECT_DOUBLE_EQ(stddev({1.0}), 0.0);
  EXPECT_THROW(mean({}), std::invalid_argument);
}

TEST(Auc, PerfectSeparationScoresOne) {
  std::vector<double> novel{5, 6, 7};
  std::vector<double> target{1, 2, 3};
  EXPECT_DOUBLE_EQ(auc_high_is_positive(novel, target), 1.0);
  EXPECT_DOUBLE_EQ(auc_low_is_positive(target, novel), 1.0);
}

TEST(Auc, ChanceLevelForIdenticalDistributions) {
  std::vector<double> a{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(auc_high_is_positive(a, a), 0.5);
}

TEST(Auc, TiesCountHalf) {
  std::vector<double> pos{1.0};
  std::vector<double> neg{1.0};
  EXPECT_DOUBLE_EQ(auc_high_is_positive(pos, neg), 0.5);
}

TEST(Auc, EmptyClassThrows) {
  EXPECT_THROW(auc_high_is_positive({}, {1.0}), std::invalid_argument);
}

TEST(Roc, RatesAtThresholdHigh) {
  std::vector<double> novel{0.8, 0.9};
  std::vector<double> target{0.1, 0.2, 0.85};
  const DetectionRates r = rates_at_threshold_high(novel, target, 0.5);
  EXPECT_DOUBLE_EQ(r.true_positive_rate, 1.0);
  EXPECT_NEAR(r.false_positive_rate, 1.0 / 3.0, 1e-12);
}

TEST(Roc, RatesAtThresholdLow) {
  std::vector<double> novel{0.05, 0.2};
  std::vector<double> target{0.7, 0.8};
  const DetectionRates r = rates_at_threshold_low(novel, target, 0.5);
  EXPECT_DOUBLE_EQ(r.true_positive_rate, 1.0);
  EXPECT_DOUBLE_EQ(r.false_positive_rate, 0.0);
}

}  // namespace
}  // namespace salnov
