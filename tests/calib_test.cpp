// Online-calibration tests: P² sketch vs the exact ECDF, drift hysteresis,
// crash-safe ThresholdSet persistence, the RCU hot-swap slot, and the
// supervisor's end-to-end recalibration loop (including the 10k-frame soak
// with a mid-run distribution shift, replayed bit-exactly from its trace).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "calib/drift_detector.hpp"
#include "calib/online_calibrator.hpp"
#include "calib/p2_sketch.hpp"
#include "calib/threshold_set.hpp"
#include "core/novelty_detector.hpp"
#include "faults/crash_points.hpp"
#include "image/transforms.hpp"
#include "metrics/ecdf.hpp"
#include "parallel/parallel_for.hpp"
#include "roadsim/outdoor_generator.hpp"
#include "serving/clock.hpp"
#include "serving/supervisor.hpp"
#include "tensor/gemm.hpp"
#include "tensor/serialize.hpp"
#include "trace/trace.hpp"

namespace salnov::calib {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

// ---------------------------------------------------------------------------
// P² sketch.

TEST(P2SketchTest, RejectsBadConstruction) {
  EXPECT_THROW(P2Sketch({0.0, 0.5}), std::invalid_argument) << "0 is not interior";
  EXPECT_THROW(P2Sketch({1.0}), std::invalid_argument);
  EXPECT_THROW(P2Sketch({0.5}, 2), std::invalid_argument) << "warm-up below marker bank";
  EXPECT_THROW(P2Sketch({std::nan("")}), std::invalid_argument);
}

TEST(P2SketchTest, EmptySketchThrowsEmptyCalibration) {
  P2Sketch sketch({0.5});
  EXPECT_THROW(sketch.upper_quantile(0.5), EmptyCalibrationError);
  EXPECT_THROW(sketch.min(), EmptyCalibrationError);
  sketch.add(std::numeric_limits<double>::quiet_NaN());
  EXPECT_THROW(sketch.upper_quantile(0.5), EmptyCalibrationError)
      << "dropped samples do not count";
}

TEST(P2SketchTest, WarmupAnswersMatchEmpiricalCdfBitExactly) {
  P2Sketch sketch({0.01, 0.5, 0.99}, 64);
  std::vector<double> samples;
  Rng rng(11);
  for (int i = 0; i < 48; ++i) {
    const double v = rng.uniform(-3.0, 7.0);
    samples.push_back(v);
    sketch.add(v);
  }
  ASSERT_FALSE(sketch.streaming());
  const EmpiricalCdf cdf(samples);
  for (const double q : {0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(sketch.upper_quantile(q), cdf.upper_quantile(q)) << "q=" << q;
    EXPECT_EQ(sketch.lower_quantile(q), cdf.lower_quantile(q)) << "q=" << q;
  }
  EXPECT_EQ(sketch.min(), cdf.min());
  EXPECT_EQ(sketch.max(), cdf.max());
}

TEST(P2SketchTest, StreamingEstimatesTrackExactQuantiles) {
  P2Sketch sketch({0.01, 0.5, 0.99}, 64);
  std::vector<double> samples;
  Rng rng(13);
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.uniform(0.0, 1.0);
    samples.push_back(v);
    sketch.add(v);
  }
  ASSERT_TRUE(sketch.streaming());
  const EmpiricalCdf cdf(samples);
  EXPECT_NEAR(sketch.upper_quantile(0.99), cdf.upper_quantile(0.99), 0.01);
  EXPECT_NEAR(sketch.upper_quantile(0.5), cdf.upper_quantile(0.5), 0.01);
  EXPECT_NEAR(sketch.lower_quantile(0.01), cdf.lower_quantile(0.01), 0.01);
  EXPECT_EQ(sketch.min(), cdf.min()) << "extremes are tracked exactly";
  EXPECT_EQ(sketch.max(), cdf.max());
  // Quantile estimates are ordered like the quantiles themselves.
  EXPECT_LE(sketch.lower_quantile(0.01), sketch.upper_quantile(0.5));
  EXPECT_LE(sketch.upper_quantile(0.5), sketch.upper_quantile(0.99));
}

TEST(P2SketchTest, NonFiniteSamplesAreDroppedAndCounted) {
  P2Sketch sketch({0.5}, 8);
  sketch.add(1.0);
  sketch.add(std::numeric_limits<double>::quiet_NaN());
  sketch.add(std::numeric_limits<double>::infinity());
  sketch.add(2.0);
  EXPECT_EQ(sketch.count(), 2);
  EXPECT_EQ(sketch.nonfinite_dropped(), 2);
  EXPECT_EQ(sketch.max(), 2.0) << "Inf never reached the quantile math";
}

TEST(P2SketchTest, StreamRoundTripsThroughCheckedFileMidWarmup) {
  const std::string path = temp_path("sketch_warmup.bin");
  P2Sketch sketch({0.01, 0.5, 0.99}, 64);
  Rng rng(17);
  for (int i = 0; i < 30; ++i) sketch.add(rng.uniform(0.0, 5.0));
  sketch.save_file(path);
  P2Sketch loaded = P2Sketch::load_file(path);
  // Continue both streams identically: every subsequent answer must agree
  // bit-for-bit, through the warm-up -> streaming transition and beyond.
  Rng cont(19);
  for (int i = 0; i < 400; ++i) {
    const double v = cont.uniform(0.0, 5.0);
    sketch.add(v);
    loaded.add(v);
  }
  ASSERT_TRUE(sketch.streaming());
  EXPECT_EQ(loaded.count(), sketch.count());
  for (const double q : {0.01, 0.5, 0.99}) {
    EXPECT_EQ(loaded.upper_quantile(q), sketch.upper_quantile(q)) << "q=" << q;
    EXPECT_EQ(loaded.lower_quantile(q), sketch.lower_quantile(q)) << "q=" << q;
  }
}

TEST(P2SketchTest, StreamRoundTripsThroughCheckedFileWhileStreaming) {
  const std::string path = temp_path("sketch_streaming.bin");
  P2Sketch sketch({0.01, 0.5, 0.99}, 64);
  Rng rng(23);
  for (int i = 0; i < 500; ++i) sketch.add(rng.uniform(-1.0, 1.0));
  ASSERT_TRUE(sketch.streaming());
  sketch.save_file(path);
  P2Sketch loaded = P2Sketch::load_file(path);
  EXPECT_EQ(loaded.count(), sketch.count());
  EXPECT_EQ(loaded.tracked(), sketch.tracked());
  Rng cont(29);
  for (int i = 0; i < 200; ++i) {
    const double v = cont.uniform(-1.0, 1.0);
    sketch.add(v);
    loaded.add(v);
  }
  for (const double q : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(loaded.upper_quantile(q), sketch.upper_quantile(q)) << "q=" << q;
  }
}

// ---------------------------------------------------------------------------
// Drift hysteresis.

TEST(DriftDetectorTest, RejectsBadConfig) {
  EXPECT_THROW(DriftDetector({0.0, 3, 5}), std::invalid_argument);
  EXPECT_THROW(DriftDetector({0.5, 0, 5}), std::invalid_argument);
  EXPECT_THROW(DriftDetector({0.5, 3, 0}), std::invalid_argument);
}

TEST(DriftDetectorTest, TriggerAndReleaseAreConsecutiveCounts) {
  DriftDetector detector({0.5, /*trigger=*/3, /*release=*/2});
  EXPECT_EQ(detector.update(true), DriftState::kAlert);
  EXPECT_EQ(detector.update(true), DriftState::kAlert);
  EXPECT_EQ(detector.update(false), DriftState::kStable) << "streak broken before trigger";
  EXPECT_EQ(detector.update(true), DriftState::kAlert);
  EXPECT_EQ(detector.update(true), DriftState::kAlert);
  EXPECT_EQ(detector.update(true), DriftState::kDrifted);
  EXPECT_EQ(detector.update(false), DriftState::kDrifted) << "one clean check holds the episode";
  EXPECT_EQ(detector.update(true), DriftState::kDrifted) << "clean streak resets";
  EXPECT_EQ(detector.update(false), DriftState::kDrifted);
  EXPECT_EQ(detector.update(false), DriftState::kStable) << "released after 2 consecutive clean";
}

TEST(DriftDetectorTest, ResetRearmsTheEpisode) {
  DriftDetector detector({0.5, 1, 5});
  EXPECT_EQ(detector.update(true), DriftState::kDrifted);
  detector.reset();
  EXPECT_EQ(detector.state(), DriftState::kStable);
  EXPECT_EQ(detector.update(true), DriftState::kDrifted) << "trigger counts start over";
}

// ---------------------------------------------------------------------------
// ThresholdSet persistence + crash injection.

ThresholdSet make_set(int64_t epoch, double base) {
  ThresholdSet set;
  set.epoch = epoch;
  for (int v = 0; v < core::kDetectorVariantCount; ++v) {
    set.thresholds[static_cast<size_t>(v)] =
        core::NoveltyThreshold(base + v, core::ScoreOrientation::kHighIsNovel);
    set.shadow_samples[static_cast<size_t>(v)] = 100 * (v + 1);
    set.rebuilt[static_cast<size_t>(v)] = static_cast<uint8_t>(v % 2);
  }
  return set;
}

TEST(ThresholdSetTest, RoundTripsThroughCheckedFile) {
  const std::string path = temp_path("thresholds_roundtrip.bin");
  const ThresholdSet set = make_set(7, 0.25);
  set.save_file(path);
  const ThresholdSet loaded = ThresholdSet::load_file(path);
  EXPECT_EQ(loaded.epoch, 7);
  for (int v = 0; v < core::kDetectorVariantCount; ++v) {
    const size_t i = static_cast<size_t>(v);
    EXPECT_EQ(loaded.thresholds[i].threshold(), set.thresholds[i].threshold());
    EXPECT_EQ(loaded.thresholds[i].orientation(), set.thresholds[i].orientation());
    EXPECT_EQ(loaded.shadow_samples[i], set.shadow_samples[i]);
    EXPECT_EQ(loaded.rebuilt[i], set.rebuilt[i]);
  }
}

TEST(ThresholdSetTest, SuccessfulSavePassesEveryCrashPoint) {
  const std::string path = temp_path("thresholds_passes.bin");
  const int64_t before[] = {
      faults::crash_point_passes(faults::CrashPoint::kSwapBeforeTempWrite),
      faults::crash_point_passes(faults::CrashPoint::kSwapAfterTempWrite),
      faults::crash_point_passes(faults::CrashPoint::kSwapAfterRename),
  };
  make_set(1, 0.5).save_file(path);
  EXPECT_EQ(faults::crash_point_passes(faults::CrashPoint::kSwapBeforeTempWrite), before[0] + 1);
  EXPECT_EQ(faults::crash_point_passes(faults::CrashPoint::kSwapAfterTempWrite), before[1] + 1);
  EXPECT_EQ(faults::crash_point_passes(faults::CrashPoint::kSwapAfterRename), before[2] + 1);
}

TEST(ThresholdSetTest, CrashAtEveryPointLeavesServedFileReadable) {
  const std::string path = temp_path("thresholds_crash.bin");
  std::filesystem::remove(path);
  make_set(1, 0.5).save_file(path);  // the "served" set an operator relies on

  const struct {
    faults::CrashPoint point;
    int64_t expected_epoch;  // what a restart must recover
  } cases[] = {
      {faults::CrashPoint::kSwapBeforeTempWrite, 1},  // nothing written yet
      {faults::CrashPoint::kSwapAfterTempWrite, 1},   // temp complete, rename pending
      {faults::CrashPoint::kSwapAfterRename, 2},      // new file already in place
  };
  for (const auto& c : cases) {
    std::filesystem::remove(path);
    make_set(1, 0.5).save_file(path);
    {
      faults::ScopedCrashPoint crash(c.point);
      EXPECT_THROW(make_set(2, 0.9).save_file(path), faults::InjectedCrash)
          << faults::crash_point_name(c.point);
    }
    const ThresholdSet recovered = ThresholdSet::load_file(path);
    EXPECT_EQ(recovered.epoch, c.expected_epoch)
        << "crash at " << faults::crash_point_name(c.point)
        << " must leave a complete old-or-new file, never a torn one";
    // No stray temp files: the writer cleans up after an injected crash.
    int64_t siblings = 0;
    for (const auto& entry :
         std::filesystem::directory_iterator(std::filesystem::path(path).parent_path())) {
      if (entry.path().string().rfind(path, 0) == 0) ++siblings;
    }
    EXPECT_EQ(siblings, 1) << "only the target file remains after "
                           << faults::crash_point_name(c.point);
  }
}

// ---------------------------------------------------------------------------
// Hot-swap slot.

TEST(ThresholdHotSwapTest, InstallPublishesAndRetiredSetsStayValid) {
  ThresholdHotSwap slot;
  EXPECT_EQ(slot.acquire(), nullptr) << "fitted calibration served before first install";
  slot.install(std::make_shared<ThresholdSet>(make_set(1, 0.1)));
  const ThresholdSet* first = slot.acquire();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->epoch, 1);
  slot.install(std::make_shared<ThresholdSet>(make_set(2, 0.2)));
  EXPECT_EQ(slot.acquire()->epoch, 2);
  // A reader that pinned the old pointer for the duration of a frame must
  // still be able to dereference it after the swap.
  EXPECT_EQ(first->epoch, 1);
  EXPECT_EQ(slot.installs(), 2);
}

// ---------------------------------------------------------------------------
// Supervisor-level recalibration loop. A raw+MSE detector needs no steering
// model, keeping the fixture cheap; it is fitted on outdoor roadsim frames
// so the nominal stream is in-distribution.

constexpr int64_t kH = 16;
constexpr int64_t kW = 24;

class CalibServingFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    saved_kernel_ = active_gemm_kernel();
    set_gemm_kernel(GemmKernel::kScalar);
    Rng rng(41);
    core::NoveltyDetectorConfig config;
    config.height = kH;
    config.width = kW;
    config.preprocessing = core::Preprocessing::kRaw;
    config.score = core::ReconstructionScore::kMse;
    config.autoencoder = core::AutoencoderConfig::tiny(kH, kW);
    config.train_epochs = 10;
    detector_ = new core::NoveltyDetector(config);

    roadsim::OutdoorSceneGenerator generator;
    Rng frame_rng(101);
    std::vector<Image> train;
    for (int i = 0; i < 24; ++i) {
      const roadsim::Sample sample = generator.generate(frame_rng);
      train.push_back(resize_bilinear(sample.rgb.to_grayscale(), kH, kW));
    }
    detector_->fit(train, rng);
  }

  static void TearDownTestSuite() {
    set_gemm_kernel(saved_kernel_);
    delete detector_;
    detector_ = nullptr;
  }

  static Image nominal_frame(Rng& rng) {
    roadsim::OutdoorSceneGenerator generator;
    const roadsim::Sample sample = generator.generate(rng);
    return resize_bilinear(sample.rgb.to_grayscale(), kH, kW);
  }

  /// A nominal frame pushed off-distribution: brightness shifted the way a
  /// mis-exposed camera would, still a valid in-range frame.
  static Image shifted_frame(Rng& rng) {
    Image img = nominal_frame(rng);
    for (int64_t i = 0; i < img.numel(); ++i) {
      img.tensor()[i] = img.tensor()[i] * 1.8f + 0.15f;
    }
    img.clamp01();
    return img;
  }

  static OnlineCalibrationConfig fast_calibration() {
    OnlineCalibrationConfig calibration;
    calibration.enabled = true;
    calibration.warmup = 16;
    calibration.min_samples = 24;
    calibration.check_every_frames = 8;
    calibration.trigger_checks = 2;
    calibration.release_checks = 2;
    return calibration;
  }

  static core::NoveltyDetector* detector_;
  static GemmKernel saved_kernel_;
};

core::NoveltyDetector* CalibServingFixture::detector_ = nullptr;
GemmKernel CalibServingFixture::saved_kernel_ = GemmKernel::kScalar;

TEST_F(CalibServingFixture, CalibrationOffLeavesCountersAndJsonInert) {
  serving::FakeClock clock;
  serving::Supervisor supervisor(*detector_, nullptr, {}, &clock);
  Rng rng(43);
  for (int i = 0; i < 4; ++i) supervisor.process(nominal_frame(rng));
  const serving::HealthSnapshot health = supervisor.health();
  EXPECT_EQ(health.drift_checks, 0);
  EXPECT_EQ(health.threshold_swaps, 0);
  EXPECT_EQ(health.threshold_epoch, 0);
  const std::string json = health.to_json();
  EXPECT_NE(json.find("\"drift_state\":\"off\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"shadow\":[]"), std::string::npos) << json;
}

TEST_F(CalibServingFixture, ForcedSwapInstallsNextEpochOnSchedule) {
  serving::SupervisorConfig config;
  config.calibration = fast_calibration();
  config.calibration.forced_swap_frames = {10};
  serving::FakeClock clock;
  serving::Supervisor supervisor(*detector_, nullptr, config, &clock);
  Rng rng(45);
  for (int i = 0; i < 20; ++i) {
    const serving::ServeResult result = supervisor.process(nominal_frame(rng));
    EXPECT_EQ(result.threshold_swapped, i == 10) << "frame " << i;
    EXPECT_EQ(result.threshold_epoch, i < 10 ? 0 : 1) << "frame " << i;
  }
  ASSERT_EQ(supervisor.swap_events().size(), 1u);
  const serving::ThresholdSwapEvent& event = supervisor.swap_events().front();
  EXPECT_EQ(event.frame_index, 10);
  EXPECT_EQ(event.epoch, 1);
  EXPECT_TRUE(event.forced);
  EXPECT_FALSE(event.persisted) << "no store_path configured";
  const serving::HealthSnapshot health = supervisor.health();
  EXPECT_EQ(health.threshold_swaps, 1);
  EXPECT_EQ(health.threshold_epoch, 1);
  ASSERT_NE(supervisor.served_thresholds(), nullptr);
  // Frame 10 had only 11 scored samples (< min_samples 24): every rung
  // carries over the fitted threshold rather than trusting a thin shadow.
  for (int v = 0; v < core::kDetectorVariantCount; ++v) {
    EXPECT_EQ(supervisor.served_thresholds()->rebuilt[static_cast<size_t>(v)], 0);
    EXPECT_EQ(
        supervisor.served_thresholds()->thresholds[static_cast<size_t>(v)].threshold(),
        detector_->variant_calibration(static_cast<core::DetectorVariant>(v)).threshold.threshold());
  }
}

TEST_F(CalibServingFixture, DistributionShiftFiresDriftAndAutoSwaps) {
  serving::SupervisorConfig config;
  config.calibration = fast_calibration();
  serving::FakeClock clock;
  serving::Supervisor supervisor(*detector_, nullptr, config, &clock);
  Rng rng(47);
  // Nominal phase: shadow agrees with the fitted thresholds.
  for (int i = 0; i < 32; ++i) supervisor.process(nominal_frame(rng));
  const serving::HealthSnapshot before = supervisor.health();
  EXPECT_EQ(before.threshold_swaps, 0);
  EXPECT_EQ(before.drift_detections, 0) << "in-distribution stream must not drift";
  ASSERT_GE(before.drift_checks, 1);

  // Shifted phase: scores leave the fitted distribution and stay there.
  for (int i = 0; i < 96; ++i) supervisor.process(shifted_frame(rng));
  const serving::HealthSnapshot after = supervisor.health();
  EXPECT_GT(after.drift_detections, 0);
  EXPECT_GE(after.threshold_swaps, 1);
  EXPECT_GE(after.threshold_epoch, 1);
  ASSERT_FALSE(supervisor.swap_events().empty());
  EXPECT_FALSE(supervisor.swap_events().front().forced);
  // The swapped set rebuilt the rung that actually served (raw+MSE).
  ASSERT_NE(supervisor.served_thresholds(), nullptr);
  EXPECT_EQ(supervisor.served_thresholds()
                ->rebuilt[static_cast<size_t>(core::DetectorVariant::kRawMse)],
            1);
  const std::string json = after.to_json();
  EXPECT_NE(json.find("\"drift_checks\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"shadow\":[{\"rung\":"), std::string::npos) << json;
}

TEST_F(CalibServingFixture, SwapPersistsToStoreAndRecoversAtRestart) {
  const std::string store = temp_path("supervisor_store.bin");
  std::filesystem::remove(store);
  serving::SupervisorConfig config;
  config.calibration = fast_calibration();
  config.calibration.forced_swap_frames = {30};
  config.calibration.store_path = store;
  serving::FakeClock clock;
  serving::Supervisor supervisor(*detector_, nullptr, config, &clock);
  Rng rng(49);
  for (int i = 0; i < 40; ++i) supervisor.process(nominal_frame(rng));
  ASSERT_EQ(supervisor.swap_events().size(), 1u);
  EXPECT_TRUE(supervisor.swap_events().front().persisted);

  // "Restart": a fresh supervisor recovers the persisted set and serves it.
  const ThresholdSet recovered = ThresholdSet::load_file(store);
  EXPECT_EQ(recovered.epoch, 1);
  serving::FakeClock clock2;
  serving::Supervisor restarted(*detector_, nullptr, config, &clock2);
  restarted.install_thresholds(std::make_shared<ThresholdSet>(recovered));
  ASSERT_NE(restarted.served_thresholds(), nullptr);
  EXPECT_EQ(restarted.served_thresholds()->epoch, 1);
  EXPECT_EQ(restarted.health().threshold_epoch, 1);
}

TEST_F(CalibServingFixture, PersistFailureKeepsOldThresholdsAndCounts) {
  const std::string store = temp_path("supervisor_store_crash.bin");
  std::filesystem::remove(store);
  make_set(5, 0.5).save_file(store);  // pre-existing served file
  serving::SupervisorConfig config;
  config.calibration = fast_calibration();
  config.calibration.forced_swap_frames = {8};
  config.calibration.store_path = store;
  serving::FakeClock clock;
  serving::Supervisor supervisor(*detector_, nullptr, config, &clock);
  Rng rng(51);
  {
    faults::ScopedCrashPoint crash(faults::CrashPoint::kSwapAfterTempWrite);
    for (int i = 0; i < 16; ++i) {
      const serving::ServeResult result = supervisor.process(nominal_frame(rng));
      EXPECT_FALSE(result.threshold_swapped) << "frame " << i;
      EXPECT_TRUE(result.scored) << "serving continues through the failed persist";
    }
  }
  const serving::HealthSnapshot health = supervisor.health();
  EXPECT_EQ(health.swap_persist_failures, 1);
  EXPECT_EQ(health.threshold_swaps, 0) << "a set that was not made durable is not installed";
  EXPECT_EQ(supervisor.served_thresholds(), nullptr);
  EXPECT_TRUE(supervisor.swap_events().empty());
  EXPECT_EQ(ThresholdSet::load_file(store).epoch, 5) << "disk still holds the old complete file";
}

// ---------------------------------------------------------------------------
// The acceptance soak: 10k frames under FakeClock, an injected mid-run
// exposure shift, drift fires and hot-swaps without dropping a frame, and
// the recorded trace (swap event included) replays bit-exactly at 1 and 4
// threads.

struct ThreadGuard {
  ~ThreadGuard() { parallel::set_num_threads(0); }
};

TEST_F(CalibServingFixture, TenThousandFrameSoakSwapsAndReplaysBitExact) {
  trace::TraceRunSpec spec;
  spec.dataset = "outdoor";
  spec.frame_seed = 2024;
  spec.fault_seed = 7;
  spec.frames = 10000;
  spec.height = kH;
  spec.width = kW;
  trace::TraceCameraFault shift;
  shift.fault = faults::CameraFault::kOverExposure;
  shift.severity = 0.35;
  shift.first_frame = 5000;
  shift.last_frame = 9999;
  spec.camera_faults.push_back(shift);
  spec.supervisor.calibration.enabled = true;
  spec.supervisor.calibration.warmup = 64;
  spec.supervisor.calibration.min_samples = 256;
  spec.supervisor.calibration.check_every_frames = 64;
  spec.supervisor.calibration.trigger_checks = 3;
  spec.supervisor.calibration.release_checks = 5;
  spec.validate();

  const trace::Trace trace = trace::TraceRecorder::record(spec, *detector_, nullptr);
  EXPECT_EQ(trace.health.frames_total, 10000);
  EXPECT_EQ(trace.health.frames_abandoned, 0) << "no frame dropped or blocked across the swap";
  EXPECT_GE(trace.health.threshold_swaps, 1) << "the exposure shift must trigger a hot-swap";
  EXPECT_GT(trace.health.drift_detections, 0);
  EXPECT_GE(trace.health.threshold_epoch, 1);
  int64_t swap_frames = 0;
  int64_t first_swap = -1;
  for (const trace::TraceFrame& frame : trace.frames) {
    if (frame.swapped) {
      ++swap_frames;
      if (first_swap < 0) first_swap = frame.frame_index;
    }
  }
  EXPECT_EQ(swap_frames, trace.health.threshold_swaps);
  EXPECT_GE(first_swap, 5000) << "drift must not fire before the distribution shifts";

  // The swap event survives the file format.
  const std::string path = temp_path("soak.trace");
  trace.save_file(path);
  const trace::Trace loaded = trace::Trace::load_file(path);
  ASSERT_EQ(loaded.frames.size(), trace.frames.size());
  EXPECT_EQ(loaded.frames[static_cast<size_t>(first_swap)].swapped, true);
  EXPECT_EQ(loaded.health.threshold_swaps, trace.health.threshold_swaps);
  EXPECT_TRUE(loaded.spec.supervisor.calibration.enabled);

  ThreadGuard guard;
  for (const int threads : {1, 4}) {
    parallel::set_num_threads(threads);
    const trace::ReplayReport report = trace::TraceReplayer::replay(loaded, *detector_, nullptr);
    EXPECT_TRUE(report.ok()) << "threads=" << threads << ": "
                             << (report.divergence ? report.divergence->format() : "");
    EXPECT_EQ(report.frames_compared, 10000);
  }
}

}  // namespace
}  // namespace salnov::calib
