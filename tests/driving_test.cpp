// Unit tests for the PilotNet steering model and its training harness.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "driving/pilotnet.hpp"
#include "driving/steering_trainer.hpp"
#include "image/transforms.hpp"
#include "nn/model_io.hpp"
#include "roadsim/outdoor_generator.hpp"

namespace salnov::driving {
namespace {

TEST(PilotNet, PaperConfigShapes) {
  Rng rng(1);
  const PilotNetConfig config = PilotNetConfig::paper();
  nn::Sequential model = build_pilotnet(config, rng);
  EXPECT_EQ(model.output_shape({4, 1, 60, 160}), (Shape{4, 1}));
}

TEST(PilotNet, PaperConfigHasFiveConvStages) {
  Rng rng(2);
  nn::Sequential model = build_pilotnet(PilotNetConfig::paper(), rng);
  EXPECT_EQ(conv_stage_outputs(model).size(), 5u);
}

TEST(PilotNet, CompactConfigShapes) {
  Rng rng(3);
  nn::Sequential model = build_pilotnet(PilotNetConfig::compact(), rng);
  EXPECT_EQ(model.output_shape({2, 1, 60, 160}), (Shape{2, 1}));
  // Compact model must be much smaller than the paper model.
  Rng rng2(3);
  nn::Sequential paper = build_pilotnet(PilotNetConfig::paper(), rng2);
  EXPECT_LT(model.parameter_count(), paper.parameter_count() / 4);
}

TEST(PilotNet, TinyConfigShapes) {
  Rng rng(4);
  const PilotNetConfig config = PilotNetConfig::tiny(24, 48);
  nn::Sequential model = build_pilotnet(config, rng);
  EXPECT_EQ(model.output_shape({1, 1, 24, 48}), (Shape{1, 1}));
}

TEST(PilotNet, OutputBoundedByTanh) {
  Rng rng(5);
  nn::Sequential model = build_pilotnet(PilotNetConfig::tiny(24, 48), rng);
  const Tensor out = model.forward(rng.uniform_tensor({3, 1, 24, 48}, 0.0, 1.0), nn::Mode::kInfer);
  for (int64_t i = 0; i < out.numel(); ++i) {
    EXPECT_GE(out[i], -1.0f);
    EXPECT_LE(out[i], 1.0f);
  }
}

TEST(PilotNet, InvalidConfigThrows) {
  Rng rng(6);
  PilotNetConfig config;
  config.conv_channels.clear();
  EXPECT_THROW(build_pilotnet(config, rng), std::invalid_argument);
}

TEST(PilotNet, ConvStageOutputsPointAtReLUs) {
  Rng rng(7);
  nn::Sequential model = build_pilotnet(PilotNetConfig::tiny(24, 48), rng);
  for (size_t idx : conv_stage_outputs(model)) {
    EXPECT_EQ(model.layer(idx).type_name(), "relu");
    EXPECT_EQ(model.layer(idx - 1).type_name(), "conv2d");
  }
}

TEST(SteeringTrainer, LossDecreasesOnRealLabels) {
  roadsim::OutdoorSceneGenerator gen;
  Rng rng(8);
  const auto dataset = roadsim::DrivingDataset::generate(gen, 48, 24, 48, rng);

  nn::Sequential model = build_pilotnet(PilotNetConfig::tiny(24, 48), rng);
  SteeringTrainOptions options;
  options.epochs = 12;
  options.learning_rate = 2e-3;
  const SteeringTrainResult result = train_steering_model(model, dataset, options, rng);
  ASSERT_GE(result.history.epoch_loss.size(), 2u);
  EXPECT_LT(result.history.epoch_loss.back(), result.history.epoch_loss.front());
}

TEST(SteeringTrainer, LearnsBetterThanMeanPredictor) {
  roadsim::OutdoorSceneGenerator gen;
  Rng rng(9);
  const auto dataset = roadsim::DrivingDataset::generate(gen, 96, 24, 48, rng);

  nn::Sequential model = build_pilotnet(PilotNetConfig::tiny(24, 48), rng);
  SteeringTrainOptions options;
  options.epochs = 25;
  options.learning_rate = 2e-3;
  train_steering_model(model, dataset, options, rng);

  // Variance of the labels = MSE of the best constant predictor.
  double mean_label = 0.0;
  for (int64_t i = 0; i < dataset.size(); ++i) mean_label += dataset.steering(i);
  mean_label /= static_cast<double>(dataset.size());
  double variance = 0.0;
  for (int64_t i = 0; i < dataset.size(); ++i) {
    const double d = dataset.steering(i) - mean_label;
    variance += d * d;
  }
  variance /= static_cast<double>(dataset.size());

  double model_mse = 0.0;
  for (int64_t i = 0; i < dataset.size(); ++i) {
    const double d = predict_steering(model, dataset.image(i)) - dataset.steering(i);
    model_mse += d * d;
  }
  model_mse /= static_cast<double>(dataset.size());
  EXPECT_LT(model_mse, variance * 0.6);
}

TEST(SteeringTrainer, RandomLabelsDoNotLearnStructure) {
  roadsim::OutdoorSceneGenerator gen;
  Rng rng(10);
  const auto dataset = roadsim::DrivingDataset::generate(gen, 48, 24, 48, rng);

  nn::Sequential model = build_pilotnet(PilotNetConfig::tiny(24, 48), rng);
  SteeringTrainOptions options;
  options.epochs = 10;
  options.randomize_labels = true;
  train_steering_model(model, dataset, options, rng);

  // Against the *true* labels the random-label model should be no better
  // than a mean predictor (it never saw them).
  const double mae = steering_mae(model, dataset);
  EXPECT_GT(mae, 0.15);
}

TEST(SteeringTrainer, EmptyDatasetThrows) {
  Rng rng(11);
  nn::Sequential model = build_pilotnet(PilotNetConfig::tiny(24, 48), rng);
  EXPECT_THROW(train_steering_model(model, roadsim::DrivingDataset{}, {}, rng), std::invalid_argument);
}

TEST(PilotNet, FreshModelPredictsNearZero) {
  // The output head is initialized small so the tanh starts in its linear
  // region: an untrained model must not be saturated at +/-1 (that failure
  // mode produces vanishing gradients and a constant-prediction model).
  Rng rng(20);
  nn::Sequential model = build_pilotnet(PilotNetConfig::compact(), rng);
  Rng probe_rng(21);
  for (int i = 0; i < 5; ++i) {
    const Tensor input = probe_rng.uniform_tensor({1, 1, 60, 160}, 0.0, 1.0);
    const double prediction = model.forward(input, nn::Mode::kInfer)[0];
    EXPECT_LT(std::abs(prediction), 0.5) << "saturated at init";
  }
}

TEST(PilotNet, TrainedModelRoundTripsThroughFile) {
  roadsim::OutdoorSceneGenerator gen;
  Rng rng(22);
  const auto dataset = roadsim::DrivingDataset::generate(gen, 32, 24, 48, rng);
  nn::Sequential model = build_pilotnet(PilotNetConfig::tiny(24, 48), rng);
  SteeringTrainOptions options;
  options.epochs = 5;
  train_steering_model(model, dataset, options, rng);

  std::stringstream ss;
  nn::save_model(ss, model);
  nn::Sequential loaded = nn::load_model(ss);
  for (int64_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(predict_steering(loaded, dataset.image(i)),
                     predict_steering(model, dataset.image(i)));
  }
}

TEST(SteeringTrainer, MirrorAugmentationKeepsLabelSymmetry) {
  // For a model trained on mirrored data, prediction(flip(x)) should roughly
  // equal -prediction(x) on training images — the augmentation teaches the
  // steering symmetry.
  roadsim::OutdoorSceneGenerator gen;
  Rng rng(23);
  const auto dataset = roadsim::DrivingDataset::generate(gen, 60, 24, 48, rng);
  nn::Sequential model = build_pilotnet(PilotNetConfig::tiny(24, 48), rng);
  SteeringTrainOptions options;
  options.epochs = 25;
  options.learning_rate = 2e-3;
  train_steering_model(model, dataset.with_mirrored(), options, rng);

  double asymmetry = 0.0;
  for (int64_t i = 0; i < 10; ++i) {
    const double direct = predict_steering(model, dataset.image(i));
    const double mirrored = predict_steering(model, flip_horizontal(dataset.image(i)));
    asymmetry += std::abs(direct + mirrored);
  }
  EXPECT_LT(asymmetry / 10.0, 0.25);
}

TEST(SteeringTrainer, PredictSteeringScalar) {
  Rng rng(12);
  nn::Sequential model = build_pilotnet(PilotNetConfig::tiny(24, 48), rng);
  const double s = predict_steering(model, Image(24, 48));
  EXPECT_GE(s, -1.0);
  EXPECT_LE(s, 1.0);
}

}  // namespace
}  // namespace salnov::driving
