// Replica failure-domain tests: fault-scheduled crash/hang/slow/corruption,
// watchdog quarantine + half-open probe restore, deterministic failover and
// re-dispatch, inline Supervisor fallback, admission-credit shedding, and a
// seeded chaos property suite.
//
// The invariant under test everywhere: per-sample scores stay bit-identical
// to the batch-1 path through EVERY recovery route — batched on the home
// replica, batched on a survivor after failover, or served inline by the
// stream's own Supervisor. All scenarios run under a FakeClock with the
// staged pause -> submit -> advance -> drain protocol, so the quarantine /
// probe / failover sequence is a pure function of the fault schedule and
// the arrival timestamps.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <vector>

#include "core/novelty_detector.hpp"
#include "driving/pilotnet.hpp"
#include "faults/replica_faults.hpp"
#include "prop.hpp"
#include "serving/clock.hpp"
#include "serving/cluster.hpp"
#include "serving/supervisor.hpp"
#include "serving/watchdog.hpp"
#include "trace/trace.hpp"

namespace salnov::serving {
namespace {

using core::NoveltyDetector;
using core::NoveltyDetectorConfig;
using core::Preprocessing;
using core::ReconstructionScore;
using faults::ReplicaFault;
using faults::ReplicaFaultKind;
using faults::ReplicaFaultSchedule;

constexpr int64_t kH = 16;
constexpr int64_t kW = 24;
constexpr int64_t kMs = 1'000'000;  // ns

class FailoverFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(41);
    steering_ = new nn::Sequential(
        driving::build_pilotnet(driving::PilotNetConfig::tiny(kH, kW), rng));

    NoveltyDetectorConfig config;
    config.height = kH;
    config.width = kW;
    config.preprocessing = Preprocessing::kVbp;
    config.score = ReconstructionScore::kSsim;
    config.autoencoder = core::AutoencoderConfig::tiny(kH, kW);
    config.train_epochs = 10;
    detector_ = new NoveltyDetector(config);
    detector_->attach_steering_model(steering_);

    std::vector<Image> train;
    for (int i = 0; i < 24; ++i) train.push_back(familiar_frame(rng));
    detector_->fit(train, rng);
  }

  static void TearDownTestSuite() {
    delete detector_;
    detector_ = nullptr;
    delete steering_;
    steering_ = nullptr;
  }

  static Image familiar_frame(Rng& rng) {
    Image img(kH, kW);
    const double slope = rng.uniform(0.8, 1.2);
    for (int64_t y = 0; y < kH; ++y) {
      for (int64_t x = 0; x < kW; ++x) {
        img(y, x) = static_cast<float>(slope * (y + x) / static_cast<double>(kH + kW));
      }
    }
    img.clamp01();
    return img;
  }

  static Image noise_frame(Rng& rng) {
    Image img(kH, kW);
    for (int64_t y = 0; y < kH; ++y) {
      for (int64_t x = 0; x < kW; ++x) img(y, x) = static_cast<float>(rng.uniform(0.0, 1.0));
    }
    return img;
  }

  static std::vector<std::vector<Image>> stream_scripts(int64_t streams, int64_t frames) {
    std::vector<std::vector<Image>> scripts(static_cast<size_t>(streams));
    for (int64_t s = 0; s < streams; ++s) {
      Rng rng(100 + static_cast<uint64_t>(s));
      for (int64_t i = 0; i < frames; ++i) {
        scripts[static_cast<size_t>(s)].push_back(
            (i + s) % 3 == 2 ? noise_frame(rng) : familiar_frame(rng));
      }
    }
    return scripts;
  }

  /// Reference decision stream: one private Supervisor per stream under its
  /// own FakeClock (no stalls, so decisions depend only on the frames).
  static std::vector<std::vector<ServeResult>> solo_reference(
      const std::vector<std::vector<Image>>& scripts, const SupervisorConfig& sup = {}) {
    std::vector<std::vector<ServeResult>> solo(scripts.size());
    for (size_t s = 0; s < scripts.size(); ++s) {
      FakeClock clock;
      Supervisor supervisor(*detector_, steering_, sup, &clock);
      for (const Image& frame : scripts[s]) solo[s].push_back(supervisor.process(frame));
    }
    return solo;
  }

  static void expect_results_bitexact(const ServeResult& solo, const ServeResult& batched) {
    EXPECT_EQ(solo.frame_index, batched.frame_index);
    EXPECT_EQ(solo.mode, batched.mode);
    EXPECT_EQ(solo.scored, batched.scored);
    EXPECT_EQ(solo.abandoned, batched.abandoned);
    EXPECT_EQ(solo.deadline_overrun, batched.deadline_overrun);
    EXPECT_EQ(solo.sensor_bad, batched.sensor_bad);
    EXPECT_EQ(solo.novel, batched.novel);
    EXPECT_TRUE((std::isnan(solo.score) && std::isnan(batched.score)) ||
                solo.score == batched.score)
        << "score " << solo.score << " vs " << batched.score;
    EXPECT_TRUE((std::isnan(solo.steering) && std::isnan(batched.steering)) ||
                solo.steering == batched.steering)
        << "steering " << solo.steering << " vs " << batched.steering;
    EXPECT_EQ(solo.monitor_state, batched.monitor_state);
    EXPECT_EQ(solo.fallback_path, batched.fallback_path);
  }

  /// Diffs the full cluster output against the per-stream solo reference.
  static void expect_all_bitexact(const std::vector<ClusterResult>& results,
                                  const std::vector<std::vector<ServeResult>>& solo) {
    std::map<int64_t, int64_t> next_frame;
    for (const ClusterResult& cr : results) {
      const int64_t s = cr.stream_id;
      const int64_t i = next_frame[s]++;
      ASSERT_LT(static_cast<size_t>(i), solo[static_cast<size_t>(s)].size());
      expect_results_bitexact(solo[static_cast<size_t>(s)][static_cast<size_t>(i)], cr.result);
    }
  }

  /// Fast-reacting watchdog for the scripted timelines below: one missed
  /// 1 ms deadline per 10 ms round, quarantine at 2 misses, probe at 8 ms.
  static WatchdogConfig fast_watchdog() {
    WatchdogConfig wd;
    wd.enabled = true;
    wd.batch_deadline_ns = 1 * kMs;
    wd.missed_deadlines_to_quarantine = 2;
    wd.probe_backoff_ns = 8 * kMs;
    wd.max_probe_backoff_ns = 64 * kMs;
    return wd;
  }

  /// Staged protocol shared by the scenarios: `rounds` arrival rounds, all
  /// streams submitting one frame per round, 10 ms of fake time between
  /// rounds, then drain.
  struct RunOutput {
    std::vector<ClusterResult> results;
    std::vector<ClusterEvent> events;
    ClusterStats stats;
  };
  static RunOutput run_staged(ServingCluster& cluster, FakeClock& clock,
                              const std::vector<std::vector<Image>>& scripts) {
    cluster.pause();
    const int64_t streams = static_cast<int64_t>(scripts.size());
    const int64_t rounds = static_cast<int64_t>(scripts[0].size());
    for (int64_t i = 0; i < rounds; ++i) {
      for (int64_t s = 0; s < streams; ++s) {
        cluster.submit(s, scripts[static_cast<size_t>(s)][static_cast<size_t>(i)]);
      }
      clock.advance_ns(10 * kMs);
    }
    cluster.drain();
    RunOutput out;
    out.results = cluster.take_results();
    out.events = cluster.take_events();
    out.stats = cluster.stats();
    std::sort(out.results.begin(), out.results.end(),
              [](const ClusterResult& a, const ClusterResult& b) {
                return a.arrival_seq < b.arrival_seq;
              });
    return out;
  }

  static bool has_event(const std::vector<ClusterEvent>& events, ClusterEventKind kind) {
    return std::any_of(events.begin(), events.end(),
                       [kind](const ClusterEvent& e) { return e.kind == kind; });
  }

  static NoveltyDetector* detector_;
  static nn::Sequential* steering_;
};

NoveltyDetector* FailoverFixture::detector_ = nullptr;
nn::Sequential* FailoverFixture::steering_ = nullptr;

// ---------------------------------------------------------------------------
// Watchdog state machine (no cluster).

TEST(ReplicaWatchdog, ChargesOutageIncrementallyAcrossTicks) {
  WatchdogConfig config;
  config.enabled = true;
  config.batch_deadline_ns = 10;
  config.missed_deadlines_to_quarantine = 3;
  ReplicaWatchdog wd(1, config);
  // Repeated ticks over the same window never double-count elapsed misses.
  EXPECT_FALSE(wd.charge_outage(0, 0, 15));  // 1 miss
  EXPECT_FALSE(wd.charge_outage(0, 0, 19));  // still 1
  EXPECT_FALSE(wd.charge_outage(0, 0, 25));  // 2
  EXPECT_TRUE(wd.charge_outage(0, 0, 31));   // 3 -> quarantine
}

TEST(ReplicaWatchdog, ProbeBackoffDoublesAndCaps) {
  WatchdogConfig config;
  config.enabled = true;
  config.probe_backoff_ns = 10;
  config.max_probe_backoff_ns = 35;
  ReplicaWatchdog wd(1, config);
  wd.quarantine(0, 100);
  EXPECT_FALSE(wd.probe_due(0, 105));
  EXPECT_TRUE(wd.probe_due(0, 110));
  wd.begin_probe(0);
  EXPECT_EQ(wd.state(0), ReplicaState::kHalfOpen);
  wd.probe_failed(0, 110);  // backoff 10 -> 20
  EXPECT_FALSE(wd.probe_due(0, 125));
  EXPECT_TRUE(wd.probe_due(0, 130));
  wd.begin_probe(0);
  wd.probe_failed(0, 130);  // 20 -> 35 (capped)
  EXPECT_FALSE(wd.probe_due(0, 160));
  EXPECT_TRUE(wd.probe_due(0, 165));
  wd.begin_probe(0);
  wd.restore(0);
  EXPECT_EQ(wd.state(0), ReplicaState::kHealthy);
  EXPECT_EQ(wd.probe_attempts(), 3);
}

TEST(ReplicaWatchdog, HeartbeatSilenceBeyondTimeoutTrips) {
  WatchdogConfig config;
  config.enabled = true;
  config.heartbeat_timeout_ns = 50;
  ReplicaWatchdog wd(2, config);
  EXPECT_FALSE(wd.charge_heartbeat_silence(0, 100, 149));
  EXPECT_TRUE(wd.charge_heartbeat_silence(0, 100, 151));
  wd.quarantine(1, 0);
  // Quarantined replicas are not re-charged.
  EXPECT_FALSE(wd.charge_heartbeat_silence(1, 0, 1000));
}

TEST(ReplicaWatchdog, CanaryFailuresAccumulateToThreshold) {
  WatchdogConfig config;
  config.enabled = true;
  config.canary_period_ns = 100;
  config.canary_failures_to_quarantine = 2;
  ReplicaWatchdog wd(1, config);
  EXPECT_FALSE(wd.canary_due(0, 50));
  EXPECT_TRUE(wd.canary_due(0, 100));
  EXPECT_FALSE(wd.charge_canary_failure(0));
  wd.note_canary_ok(0);  // a pass resets the streak
  EXPECT_FALSE(wd.charge_canary_failure(0));
  EXPECT_TRUE(wd.charge_canary_failure(0));
}

TEST(ReplicaWatchdog, RejectsBadKnobs) {
  WatchdogConfig config;
  config.enabled = true;
  config.batch_deadline_ns = 0;
  EXPECT_THROW(ReplicaWatchdog(1, config), std::invalid_argument);
  config = WatchdogConfig{};
  config.enabled = true;
  config.missed_deadlines_to_quarantine = 0;
  EXPECT_THROW(ReplicaWatchdog(1, config), std::invalid_argument);
  config = WatchdogConfig{};
  EXPECT_THROW(ReplicaWatchdog(0, config), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Fault schedule semantics.

TEST(ReplicaFaultScheduleTest, ActiveWindowsAreHalfOpen) {
  ReplicaFaultSchedule sched;
  sched.add({0, ReplicaFaultKind::kCrash, 10, 20, 0, 0, 1});
  EXPECT_EQ(sched.active_of_kind(0, ReplicaFaultKind::kCrash, 9), nullptr);
  EXPECT_NE(sched.active_of_kind(0, ReplicaFaultKind::kCrash, 10), nullptr);
  EXPECT_NE(sched.active_of_kind(0, ReplicaFaultKind::kCrash, 19), nullptr);
  EXPECT_EQ(sched.active_of_kind(0, ReplicaFaultKind::kCrash, 20), nullptr);
  EXPECT_EQ(sched.active_of_kind(1, ReplicaFaultKind::kCrash, 15), nullptr);
  EXPECT_TRUE(sched.outage_active(0, 15));
  EXPECT_FALSE(sched.outage_active(0, 25));
}

TEST(ReplicaFaultScheduleTest, SlowPenaltiesSumAcrossOverlappingFaults) {
  ReplicaFaultSchedule sched;
  sched.add({0, ReplicaFaultKind::kSlow, 0, 100, 5, 0, 1});
  sched.add({0, ReplicaFaultKind::kSlow, 50, 100, 7, 0, 1});
  EXPECT_EQ(sched.slow_penalty_ns(0, 10), 5);
  EXPECT_EQ(sched.slow_penalty_ns(0, 60), 12);
  EXPECT_EQ(sched.slow_penalty_ns(0, 100), 0);
}

TEST(ReplicaFaultScheduleTest, RejectsMalformedFaults) {
  ReplicaFaultSchedule sched;
  EXPECT_THROW(sched.add({-1, ReplicaFaultKind::kCrash, 0, 10, 0, 0, 1}),
               std::invalid_argument);
  EXPECT_THROW(sched.add({0, ReplicaFaultKind::kCrash, 10, 10, 0, 0, 1}),
               std::invalid_argument);
  EXPECT_THROW(sched.add({0, ReplicaFaultKind::kSlow, 0, 10, -5, 0, 1}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Deterministic failover scenarios.

TEST_F(FailoverFixture, CrashMidScheduleFailsOverBitExact) {
  const auto scripts = stream_scripts(2, 6);
  const auto solo = solo_reference(scripts);

  ReplicaFaultSchedule sched;
  sched.add({0, ReplicaFaultKind::kCrash, 0, 1'000'000 * kMs, 0, 0, 1});

  FakeClock clock;
  ClusterConfig config;
  config.streams = 2;
  config.replicas = 2;
  config.gather_window_ns = 5 * kMs;
  config.watchdog = fast_watchdog();
  config.replica_faults = &sched;
  ServingCluster cluster(*detector_, steering_, config, &clock);
  const RunOutput out = run_staged(cluster, clock, scripts);
  cluster.stop();

  ASSERT_EQ(out.results.size(), 12u);
  expect_all_bitexact(out.results, solo);
  // Stream 0's home replica never recovers: every frame of both streams is
  // served by the survivor.
  for (const ClusterResult& cr : out.results) {
    EXPECT_EQ(cr.replica, 1) << "arrival_seq " << cr.arrival_seq;
  }
  EXPECT_EQ(out.stats.quarantines, 1);
  EXPECT_GE(out.stats.failovers, 1);
  EXPECT_EQ(out.stats.redispatched_frames, 1);  // the one frame staged before t=10ms
  EXPECT_GE(out.stats.probe_attempts, 1);       // probes fire and fail while crashed
  EXPECT_EQ(out.stats.probe_attempts, out.stats.probe_failures);
  EXPECT_EQ(out.stats.restores, 0);
  EXPECT_TRUE(has_event(out.events, ClusterEventKind::kQuarantine));
  EXPECT_TRUE(has_event(out.events, ClusterEventKind::kFailover));
  EXPECT_EQ(cluster.replica_state(0), ReplicaState::kQuarantined);
}

TEST_F(FailoverFixture, HangPastGatherWindowQuarantinesAndMigrates) {
  const auto scripts = stream_scripts(2, 5);
  const auto solo = solo_reference(scripts);

  ReplicaFaultSchedule sched;
  sched.add({1, ReplicaFaultKind::kHang, 0, 1'000'000 * kMs, 0, 0, 1});

  FakeClock clock;
  ClusterConfig config;
  config.streams = 2;
  config.replicas = 2;
  config.gather_window_ns = 2 * kMs;  // hang holds batches far past the window
  config.watchdog = fast_watchdog();
  config.replica_faults = &sched;
  ServingCluster cluster(*detector_, steering_, config, &clock);
  const RunOutput out = run_staged(cluster, clock, scripts);
  cluster.stop();

  ASSERT_EQ(out.results.size(), 10u);
  expect_all_bitexact(out.results, solo);
  for (const ClusterResult& cr : out.results) EXPECT_EQ(cr.replica, 0);
  EXPECT_EQ(out.stats.quarantines, 1);
  EXPECT_TRUE(has_event(out.events, ClusterEventKind::kQuarantine));
  EXPECT_EQ(cluster.replica_state(1), ReplicaState::kQuarantined);
}

TEST_F(FailoverFixture, SlowReplicaDemotedWhenPenaltyExceedsDeadline) {
  const auto scripts = stream_scripts(2, 5);
  const auto solo = solo_reference(scripts);

  ReplicaFaultSchedule sched;
  sched.add({0, ReplicaFaultKind::kSlow, 0, 1'000'000 * kMs, /*penalty=*/20 * kMs, 0, 1});

  FakeClock clock;
  ClusterConfig config;
  config.streams = 2;
  config.replicas = 2;
  config.gather_window_ns = 5 * kMs;
  config.watchdog = fast_watchdog();
  config.watchdog.batch_deadline_ns = 5 * kMs;  // 20 ms penalty >> 5 ms deadline
  config.replica_faults = &sched;
  config.sleep_on_slow = false;  // FakeClock: time is owned by the driver
  ServingCluster cluster(*detector_, steering_, config, &clock);
  const RunOutput out = run_staged(cluster, clock, scripts);
  cluster.stop();

  ASSERT_EQ(out.results.size(), 10u);
  expect_all_bitexact(out.results, solo);
  EXPECT_EQ(out.stats.quarantines, 1);
  EXPECT_EQ(cluster.replica_state(0), ReplicaState::kQuarantined);
  for (const ClusterResult& cr : out.results) EXPECT_EQ(cr.replica, 1);
}

TEST_F(FailoverFixture, TolerableSlownessIsChargedButNotQuarantined) {
  const auto scripts = stream_scripts(2, 4);
  const auto solo = solo_reference(scripts);

  ReplicaFaultSchedule sched;
  sched.add({0, ReplicaFaultKind::kSlow, 0, 1'000'000 * kMs, /*penalty=*/1 * kMs, 0, 1});

  FakeClock clock;
  ClusterConfig config;
  config.streams = 2;
  config.replicas = 2;
  config.gather_window_ns = 5 * kMs;
  config.watchdog = fast_watchdog();
  config.watchdog.batch_deadline_ns = 5 * kMs;  // 1 ms penalty tolerable
  config.replica_faults = &sched;
  config.sleep_on_slow = false;
  ServingCluster cluster(*detector_, steering_, config, &clock);
  const RunOutput out = run_staged(cluster, clock, scripts);
  cluster.stop();

  ASSERT_EQ(out.results.size(), 8u);
  expect_all_bitexact(out.results, solo);
  EXPECT_EQ(out.stats.quarantines, 0);
  EXPECT_EQ(out.stats.failovers, 0);
  EXPECT_GE(out.stats.slow_batches, 1);  // the penalty is still accounted
  // Streams stayed home.
  for (const ClusterResult& cr : out.results) EXPECT_EQ(cr.replica, cr.stream_id % 2);
}

TEST_F(FailoverFixture, QuarantineHalfOpenProbeRestoresReplica) {
  const auto scripts = stream_scripts(2, 4);
  const auto solo = solo_reference(scripts);

  // Crash over [0 ms, 20 ms): quarantined at the t=10ms tick, probe due at
  // 18 ms, fault gone by the t=20ms tick -> probe passes -> restore, and the
  // stream fails back to its home replica.
  ReplicaFaultSchedule sched;
  sched.add({0, ReplicaFaultKind::kCrash, 0, 20 * kMs, 0, 0, 1});

  FakeClock clock;
  ClusterConfig config;
  config.streams = 2;
  config.replicas = 2;
  config.gather_window_ns = 5 * kMs;
  config.watchdog = fast_watchdog();
  config.replica_faults = &sched;
  ServingCluster cluster(*detector_, steering_, config, &clock);
  const RunOutput out = run_staged(cluster, clock, scripts);
  cluster.stop();

  ASSERT_EQ(out.results.size(), 8u);
  expect_all_bitexact(out.results, solo);
  EXPECT_EQ(out.stats.quarantines, 1);
  EXPECT_EQ(out.stats.probe_attempts, 1);
  EXPECT_EQ(out.stats.probe_failures, 0);
  EXPECT_EQ(out.stats.restores, 1);
  EXPECT_EQ(out.stats.failovers, 2);  // away at quarantine, home at restore
  EXPECT_TRUE(has_event(out.events, ClusterEventKind::kRestore));
  EXPECT_EQ(cluster.replica_state(0), ReplicaState::kHealthy);
  // After the restore everything staged on the survivor migrated back, so
  // stream 0's frames were ultimately batched on its home replica.
  for (const ClusterResult& cr : out.results) {
    if (cr.stream_id == 0) {
      EXPECT_EQ(cr.replica, 0) << "arrival_seq " << cr.arrival_seq;
    }
  }
}

TEST_F(FailoverFixture, RedispatchBudgetExhaustionFallsBackInline) {
  const auto scripts = stream_scripts(2, 4);
  const auto solo = solo_reference(scripts);

  ReplicaFaultSchedule sched;
  sched.add({0, ReplicaFaultKind::kCrash, 0, 20 * kMs, 0, 0, 1});

  FakeClock clock;
  ClusterConfig config;
  config.streams = 2;
  config.replicas = 2;
  config.gather_window_ns = 5 * kMs;
  config.watchdog = fast_watchdog();
  config.watchdog.max_redispatches = 1;  // the restore migration blows the budget
  config.replica_faults = &sched;
  ServingCluster cluster(*detector_, steering_, config, &clock);
  const RunOutput out = run_staged(cluster, clock, scripts);
  cluster.stop();

  ASSERT_EQ(out.results.size(), 8u);
  expect_all_bitexact(out.results, solo);
  EXPECT_GE(out.stats.fallback_frames, 1);
  EXPECT_TRUE(has_event(out.events, ClusterEventKind::kFallback));
  bool any_inline = false;
  for (const ClusterResult& cr : out.results) {
    if (cr.replica == -1) {
      any_inline = true;
      EXPECT_EQ(cr.batch_seq, -1);
      EXPECT_EQ(cr.batch_size, 1);
    }
  }
  EXPECT_TRUE(any_inline);
}

TEST_F(FailoverFixture, AllReplicasDownServesEveryFrameInline) {
  const auto scripts = stream_scripts(1, 5);
  const auto solo = solo_reference(scripts);

  ReplicaFaultSchedule sched;
  sched.add({0, ReplicaFaultKind::kCrash, 0, 1'000'000 * kMs, 0, 0, 1});

  FakeClock clock;
  ClusterConfig config;
  config.streams = 1;
  config.replicas = 1;
  config.watchdog = fast_watchdog();
  config.replica_faults = &sched;
  ServingCluster cluster(*detector_, steering_, config, &clock);
  const RunOutput out = run_staged(cluster, clock, scripts);

  ASSERT_EQ(out.results.size(), 5u);
  expect_all_bitexact(out.results, solo);
  // The Supervisor ladder is the fallback of last resort: batch-1 path,
  // identical bits, replica -1.
  for (const ClusterResult& cr : out.results) {
    EXPECT_EQ(cr.replica, -1);
    EXPECT_EQ(cr.batch_size, 1);
  }
  EXPECT_EQ(out.stats.fallback_frames, 5);
  EXPECT_EQ(out.stats.batched_frames, 0);

  // Satellite: the failure-domain counters surface in the aggregate
  // HealthSnapshot and its JSON rendering.
  const HealthSnapshot agg = cluster.aggregate_health();
  cluster.stop();
  EXPECT_TRUE(agg.has_cluster);
  EXPECT_EQ(agg.cluster.fallback_frames, 5);
  const std::string json = agg.to_json();
  EXPECT_NE(json.find("\"cluster\":{"), std::string::npos);
  EXPECT_NE(json.find("\"fallback_frames\":5"), std::string::npos);
  EXPECT_NE(json.find("\"provided_recon\":"), std::string::npos);
  EXPECT_NE(json.find("\"recon_mispredicts\":"), std::string::npos);
  EXPECT_NE(json.find("\"window_seals\":"), std::string::npos);
}

TEST_F(FailoverFixture, WeightCorruptionWithholdsBatchedComputeBitExact) {
  const auto scripts = stream_scripts(2, 4);
  const auto solo = solo_reference(scripts);

  // Corruption active on replica 0 with no watchdog: batches still run
  // there, but every ProvidedCompute from the poisoned replica is withheld
  // and the supervisors recompute from the pristine shared weights.
  ReplicaFaultSchedule sched;
  sched.add({0, ReplicaFaultKind::kWeightCorrupt, 0, 1'000'000 * kMs, 0, /*bits=*/64, 5});

  FakeClock clock;
  ClusterConfig config;
  config.streams = 2;
  config.replicas = 2;
  config.gather_window_ns = 5 * kMs;
  config.replica_faults = &sched;
  ServingCluster cluster(*detector_, steering_, config, &clock);
  const RunOutput out = run_staged(cluster, clock, scripts);
  cluster.stop();

  ASSERT_EQ(out.results.size(), 8u);
  expect_all_bitexact(out.results, solo);
  EXPECT_EQ(out.stats.batched_frames, 8);
  // Only the clean replica's frames were served speculative compute.
  EXPECT_EQ(out.stats.provided_steer, 4);
  EXPECT_EQ(out.stats.quarantines, 0);  // no watchdog -> no quarantine
}

TEST_F(FailoverFixture, CanaryCatchesWeightCorruptionAndQuarantines) {
  const auto scripts = stream_scripts(2, 5);
  const auto solo = solo_reference(scripts);

  ReplicaFaultSchedule sched;
  sched.add({0, ReplicaFaultKind::kWeightCorrupt, 0, 1'000'000 * kMs, 0, /*bits=*/64, 5});

  FakeClock clock;
  ClusterConfig config;
  config.streams = 2;
  config.replicas = 2;
  config.gather_window_ns = 5 * kMs;
  config.watchdog = fast_watchdog();
  config.watchdog.batch_deadline_ns = 1'000'000 * kMs;  // outage path stays quiet
  config.watchdog.canary_period_ns = 1 * kMs;
  config.watchdog.canary_failures_to_quarantine = 1;
  config.replica_faults = &sched;
  ServingCluster cluster(*detector_, steering_, config, &clock);
  const RunOutput out = run_staged(cluster, clock, scripts);
  cluster.stop();

  ASSERT_EQ(out.results.size(), 10u);
  expect_all_bitexact(out.results, solo);
  EXPECT_GE(out.stats.canary_checks, 1);
  EXPECT_GE(out.stats.canary_failures, 1);
  EXPECT_EQ(out.stats.quarantines, 1);
  // Quarantine detail 1 = canary verdict.
  bool canary_quarantine = false;
  for (const ClusterEvent& e : out.events) {
    if (e.kind == ClusterEventKind::kQuarantine && e.replica == 0 && e.detail == 1) {
      canary_quarantine = true;
    }
  }
  EXPECT_TRUE(canary_quarantine);
  EXPECT_EQ(cluster.replica_state(0), ReplicaState::kQuarantined);
}

// ---------------------------------------------------------------------------
// End-to-end backpressure: admission credits shed oldest-first per stream.

TEST_F(FailoverFixture, AdmissionCreditsShedOldestFirst) {
  FakeClock clock;
  ClusterConfig config;
  config.streams = 1;
  config.replicas = 1;
  config.admission_credits = 2;
  ServingCluster cluster(*detector_, steering_, config, &clock);
  cluster.pause();
  Rng rng(3);
  for (int i = 0; i < 5; ++i) cluster.submit(0, familiar_frame(rng));
  cluster.drain();
  const std::vector<ClusterResult> results = cluster.take_results();
  const std::vector<ClusterEvent> events = cluster.take_events();
  const ClusterStats stats = cluster.stats();

  // 5 submitted, 2 credits: seqs 0..2 shed oldest-first, 3 and 4 served.
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].arrival_seq, 3);
  EXPECT_EQ(results[1].arrival_seq, 4);
  EXPECT_EQ(stats.shed_frames, 3);
  EXPECT_EQ(cluster.shed_for_stream(0), 3);
  std::vector<int64_t> shed_seqs;
  for (const ClusterEvent& e : events) {
    if (e.kind == ClusterEventKind::kShed) shed_seqs.push_back(e.detail);
  }
  EXPECT_EQ(shed_seqs, (std::vector<int64_t>{0, 1, 2}));
  // Shedding is visible in the per-stream and aggregate snapshots.
  EXPECT_EQ(cluster.stream_health(0).queue_shed, 3);
  const HealthSnapshot agg = cluster.aggregate_health();
  EXPECT_EQ(agg.queue_shed, 3);
  EXPECT_EQ(agg.cluster.shed_frames, 3);
  cluster.stop();
}

TEST_F(FailoverFixture, AdmissionCreditsIsolatePerStream) {
  FakeClock clock;
  ClusterConfig config;
  config.streams = 2;
  config.replicas = 1;
  config.admission_credits = 3;
  ServingCluster cluster(*detector_, steering_, config, &clock);
  cluster.pause();
  Rng rng(3);
  // Stream 0 floods; stream 1 stays under its credits.
  for (int i = 0; i < 6; ++i) cluster.submit(0, familiar_frame(rng));
  for (int i = 0; i < 2; ++i) cluster.submit(1, familiar_frame(rng));
  cluster.drain();
  const ClusterStats stats = cluster.stats();
  EXPECT_EQ(cluster.shed_for_stream(0), 3);
  EXPECT_EQ(cluster.shed_for_stream(1), 0);
  EXPECT_EQ(stats.shed_frames, 3);
  EXPECT_EQ(cluster.stream_health(1).frames_total, 2);
  cluster.stop();
}

// ---------------------------------------------------------------------------
// Seeded chaos property suite (prop.hpp style: failure echoes the seed).

struct ChaosCase {
  int64_t streams = 1;
  int64_t rounds = 1;
  int64_t replicas = 1;
  int64_t admission_credits = 0;
  std::vector<ReplicaFault> faults;
};

std::string describe_case(const ChaosCase& c) {
  std::ostringstream os;
  os << "streams=" << c.streams << " rounds=" << c.rounds << " replicas=" << c.replicas
     << " credits=" << c.admission_credits << " faults=[";
  for (const ReplicaFault& f : c.faults) {
    os << "{r" << f.replica << " " << faults::replica_fault_kind_name(f.kind) << " ["
       << f.start_ns / kMs << "ms," << f.end_ns / kMs << "ms)} ";
  }
  os << "]";
  return os.str();
}

ChaosCase gen_chaos_case(Rng& rng) {
  ChaosCase c;
  c.streams = rng.uniform_int(1, 4);
  c.rounds = rng.uniform_int(3, 6);
  c.replicas = rng.uniform_int(1, 3);
  c.admission_credits = rng.uniform_int(0, 1) ? rng.uniform_int(2, 4) : 0;
  const int64_t n_faults = rng.uniform_int(0, 4);
  for (int64_t i = 0; i < n_faults; ++i) {
    ReplicaFault f;
    f.replica = rng.uniform_int(0, std::min(c.replicas, c.streams) - 1);
    f.kind = static_cast<ReplicaFaultKind>(rng.uniform_int(0, 3));
    f.start_ns = rng.uniform_int(0, 4) * 10 * kMs;
    f.end_ns = f.start_ns + rng.uniform_int(1, 5) * 10 * kMs;
    f.slow_penalty_ns = rng.uniform_int(0, 1) ? 20 * kMs : kMs / 2;
    f.weight_bits = 48;
    f.seed = rng.uniform_int(1, 1'000'000);
    c.faults.push_back(f);
  }
  return c;
}

TEST_F(FailoverFixture, ChaosConservationAndEventSanity) {
  prop::Options options;
  options.trials = 6;
  options.seed = 20260808;
  prop::for_all<ChaosCase>(
      "chaos: conservation, per-stream order, counter sanity", gen_chaos_case,
      [&](const ChaosCase& c) {
        ReplicaFaultSchedule sched;
        for (const ReplicaFault& f : c.faults) sched.add(f);

        FakeClock clock;
        ClusterConfig config;
        config.streams = c.streams;
        config.replicas = c.replicas;
        config.gather_window_ns = 5 * kMs;
        config.watchdog = fast_watchdog();
        config.watchdog.batch_deadline_ns = 5 * kMs;
        config.admission_credits = c.admission_credits;
        config.replica_faults = sched.empty() ? nullptr : &sched;
        config.sleep_on_slow = false;
        ServingCluster cluster(*detector_, steering_, config, &clock);
        const auto scripts = stream_scripts(c.streams, c.rounds);
        const RunOutput out = run_staged(cluster, clock, scripts);
        const int64_t submitted = c.streams * c.rounds;
        bool ok = true;

        // Conservation: every submitted frame was served or counted shed.
        ok = ok && static_cast<int64_t>(out.results.size()) + out.stats.shed_frames == submitted;
        ok = ok && out.stats.batched_frames + out.stats.fallback_frames ==
                       static_cast<int64_t>(out.results.size());

        // Per-stream processing order: each stream's served arrival_seqs are
        // strictly increasing (oldest-first through every recovery path).
        std::map<int64_t, int64_t> last_seq;
        std::set<int64_t> seen_seqs;
        for (const ClusterResult& cr : out.results) {
          auto it = last_seq.find(cr.stream_id);
          if (it != last_seq.end() && cr.arrival_seq <= it->second) ok = false;
          last_seq[cr.stream_id] = cr.arrival_seq;
          if (!seen_seqs.insert(cr.arrival_seq).second) ok = false;  // seqs unique
        }

        // Counter sanity: every probe resolves, restores never exceed
        // quarantines, canary failures never exceed checks.
        ok = ok && out.stats.probe_attempts ==
                       out.stats.probe_failures + out.stats.restores;
        ok = ok && out.stats.restores <= out.stats.quarantines;
        ok = ok && out.stats.canary_failures <= out.stats.canary_checks;
        ok = ok && out.stats.shed_frames <= submitted;

        // Event log consistency with the counters.
        int64_t ev_quarantines = 0;
        int64_t ev_sheds = 0;
        for (const ClusterEvent& e : out.events) {
          if (e.kind == ClusterEventKind::kQuarantine) ++ev_quarantines;
          if (e.kind == ClusterEventKind::kShed) ++ev_sheds;
        }
        ok = ok && ev_quarantines == out.stats.quarantines;
        ok = ok && ev_sheds == out.stats.shed_frames;

        cluster.stop();
        if (!ok) ADD_FAILURE() << "case: " << describe_case(c);
        return ok;
      },
      options);
}

TEST_F(FailoverFixture, ChaosRunsAreDeterministicAcrossRepeats) {
  // Two identical runs of a mixed-fault scenario must agree on every result
  // field and every event — the property the v4 trace format relies on.
  const auto run_once = [&] {
    ReplicaFaultSchedule sched;
    sched.add({0, ReplicaFaultKind::kCrash, 0, 20 * kMs, 0, 0, 1});
    sched.add({1, ReplicaFaultKind::kSlow, 10 * kMs, 40 * kMs, 20 * kMs, 0, 1});

    FakeClock clock;
    ClusterConfig config;
    config.streams = 3;
    config.replicas = 2;
    config.gather_window_ns = 5 * kMs;
    config.watchdog = fast_watchdog();
    config.watchdog.batch_deadline_ns = 5 * kMs;
    config.replica_faults = &sched;
    config.sleep_on_slow = false;
    ServingCluster cluster(*detector_, steering_, config, &clock);
    const auto scripts = stream_scripts(3, 5);
    RunOutput out = run_staged(cluster, clock, scripts);
    cluster.stop();
    return out;
  };
  const RunOutput a = run_once();
  const RunOutput b = run_once();
  ASSERT_EQ(a.results.size(), b.results.size());
  for (size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].stream_id, b.results[i].stream_id) << i;
    EXPECT_EQ(a.results[i].arrival_seq, b.results[i].arrival_seq) << i;
    EXPECT_EQ(a.results[i].replica, b.results[i].replica) << i;
    EXPECT_EQ(a.results[i].batch_seq, b.results[i].batch_seq) << i;
    EXPECT_EQ(a.results[i].batch_size, b.results[i].batch_size) << i;
  }
  ASSERT_EQ(a.events.size(), b.events.size());
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind) << i;
    EXPECT_EQ(a.events[i].at_ns, b.events[i].at_ns) << i;
    EXPECT_EQ(a.events[i].replica, b.events[i].replica) << i;
    EXPECT_EQ(a.events[i].stream, b.events[i].stream) << i;
    EXPECT_EQ(a.events[i].detail, b.events[i].detail) << i;
  }
}

// ---------------------------------------------------------------------------
// Trace format v4: a chaos run records and replays bit-exactly, events and
// cluster health included.

trace::TraceRunSpec chaos_spec() {
  trace::TraceRunSpec spec;
  spec.dataset = "outdoor";
  spec.frames = 4;
  spec.height = kH;
  spec.width = kW;
  spec.cluster.streams = 3;
  spec.cluster.replicas = 2;
  spec.cluster.gather_window_ns = 5 * kMs;
  spec.cluster.arrival_period_ns = 10 * kMs;
  spec.cluster.watchdog.enabled = true;
  spec.cluster.watchdog.batch_deadline_ns = 5 * kMs;
  spec.cluster.watchdog.missed_deadlines_to_quarantine = 2;
  spec.cluster.watchdog.probe_backoff_ns = 8 * kMs;
  spec.cluster.replica_faults.push_back(
      {0, ReplicaFaultKind::kCrash, 0, 20 * kMs, 0, 0, 1});
  spec.cluster.replica_faults.push_back(
      {1, ReplicaFaultKind::kWeightCorrupt, 10 * kMs, 100 * kMs, 0, 64, 5});
  return spec;
}

TEST_F(FailoverFixture, ChaosTraceRecordsAndReplaysBitExact) {
  const trace::TraceRunSpec spec = chaos_spec();
  const trace::Trace recorded = trace::TraceRecorder::record(spec, *detector_, steering_);
  EXPECT_EQ(recorded.frames.size(), 12u);
  // The scenario actually exercised the failure domain.
  EXPECT_GE(recorded.cluster_health.quarantines, 1);
  EXPECT_GE(recorded.cluster_health.failovers, 1);
  EXPECT_FALSE(recorded.events.empty());

  const trace::ReplayReport report =
      trace::TraceReplayer::replay(recorded, *detector_, steering_);
  EXPECT_TRUE(report.ok()) << report.format();
}

TEST_F(FailoverFixture, ChaosTraceSurvivesSerializationAndStillReplays) {
  const trace::Trace recorded =
      trace::TraceRecorder::record(chaos_spec(), *detector_, steering_);
  std::ostringstream os;
  recorded.save(os);
  std::istringstream is(os.str());
  const trace::Trace loaded = trace::Trace::load(is);

  // v4 fields round-trip.
  ASSERT_EQ(loaded.spec.cluster.replica_faults.size(), 2u);
  EXPECT_EQ(loaded.spec.cluster.replica_faults[0].kind, ReplicaFaultKind::kCrash);
  EXPECT_EQ(loaded.spec.cluster.replica_faults[1].weight_bits, 64);
  EXPECT_TRUE(loaded.spec.cluster.watchdog.enabled);
  EXPECT_EQ(loaded.spec.cluster.watchdog.probe_backoff_ns, 8 * kMs);
  ASSERT_EQ(loaded.events.size(), recorded.events.size());
  EXPECT_EQ(loaded.cluster_health.quarantines, recorded.cluster_health.quarantines);
  EXPECT_EQ(loaded.cluster_health.fallback_frames, recorded.cluster_health.fallback_frames);

  const trace::ReplayReport report =
      trace::TraceReplayer::replay(loaded, *detector_, steering_);
  EXPECT_TRUE(report.ok()) << report.format();
}

TEST_F(FailoverFixture, TamperedEventLogIsCaughtByReplay) {
  trace::Trace recorded = trace::TraceRecorder::record(chaos_spec(), *detector_, steering_);
  ASSERT_FALSE(recorded.events.empty());
  recorded.events[0].at_ns += 1;
  const trace::ReplayReport report =
      trace::TraceReplayer::replay(recorded, *detector_, steering_);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.divergence->stage, "events");
}

TEST(TraceFailureDomainSpec, ValidateRejectsBadFailureDomainSpecs) {
  trace::TraceRunSpec spec;
  spec.cluster.streams = 2;
  spec.cluster.replicas = 2;
  spec.cluster.replica_faults.push_back({5, ReplicaFaultKind::kCrash, 0, 10, 0, 0, 1});
  EXPECT_THROW(spec.validate(), std::invalid_argument);  // replica out of range

  spec = trace::TraceRunSpec{};
  spec.cluster.replica_faults.push_back({0, ReplicaFaultKind::kCrash, 0, 10, 0, 0, 1});
  EXPECT_THROW(spec.validate(), std::invalid_argument);  // faults need a cluster

  spec = trace::TraceRunSpec{};
  spec.cluster.streams = 1;
  spec.cluster.admission_credits = -1;
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = trace::TraceRunSpec{};
  spec.cluster.streams = 1;
  spec.cluster.watchdog.enabled = true;
  spec.cluster.watchdog.batch_deadline_ns = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = trace::TraceRunSpec{};
  spec.cluster.streams = 2;
  spec.cluster.replicas = 2;
  spec.cluster.watchdog.enabled = true;
  spec.cluster.admission_credits = 4;
  spec.cluster.replica_faults.push_back({1, ReplicaFaultKind::kHang, 0, 10 * kMs, 0, 0, 1});
  EXPECT_NO_THROW(spec.validate());
}

}  // namespace
}  // namespace salnov::serving
