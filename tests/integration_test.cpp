// Integration tests: the full paper pipeline end-to-end at reduced scale,
// plus property-based (parameterized) sweeps over the experimental axes.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "core/novelty_detector.hpp"
#include "driving/pilotnet.hpp"
#include "driving/steering_trainer.hpp"
#include "image/transforms.hpp"
#include "metrics/roc.hpp"
#include "roadsim/dataset.hpp"
#include "roadsim/indoor_generator.hpp"
#include "roadsim/outdoor_generator.hpp"

namespace salnov {
namespace {

constexpr int64_t kH = 24;
constexpr int64_t kW = 48;

/// Shared end-to-end environment built once: datasets + trained steering
/// model, reused by all integration tests in this binary.
struct Environment {
  Rng rng{2024};
  roadsim::OutdoorSceneGenerator outdoor;
  roadsim::IndoorSceneGenerator indoor;
  roadsim::DrivingDataset train;
  roadsim::DrivingDataset test;
  roadsim::DrivingDataset novel;
  nn::Sequential steering;

  Environment()
      : train(roadsim::DrivingDataset::generate(outdoor, 100, kH, kW, rng)),
        test(roadsim::DrivingDataset::generate(outdoor, 40, kH, kW, rng)),
        novel(roadsim::DrivingDataset::generate(indoor, 40, kH, kW, rng)),
        steering(driving::build_pilotnet(driving::PilotNetConfig::tiny(kH, kW), rng)) {
    driving::SteeringTrainOptions options;
    options.epochs = 18;
    options.learning_rate = 2e-3;
    driving::train_steering_model(steering, train, options, rng);
  }

  static Environment& instance() {
    static Environment env;
    return env;
  }
};

core::NoveltyDetectorConfig make_config(core::Preprocessing pre, core::ReconstructionScore score) {
  core::NoveltyDetectorConfig config;
  config.height = kH;
  config.width = kW;
  config.preprocessing = pre;
  config.score = score;
  config.autoencoder = core::AutoencoderConfig::tiny(kH, kW);
  config.train_epochs = 200;
  config.learning_rate = 3e-3;
  return config;
}

double detector_auc(const core::NoveltyDetector& detector, const roadsim::DrivingDataset& target,
                    const roadsim::DrivingDataset& novel) {
  const auto target_scores = detector.scores(target.images());
  const auto novel_scores = detector.scores(novel.images());
  if (detector.config().score == core::ReconstructionScore::kMse) {
    return auc_high_is_positive(novel_scores, target_scores);
  }
  return auc_low_is_positive(novel_scores, target_scores);
}

TEST(EndToEnd, FullPipelineDistinguishesDatasets) {
  Environment& env = Environment::instance();
  core::NoveltyDetector detector(
      make_config(core::Preprocessing::kVbp, core::ReconstructionScore::kSsim));
  detector.attach_steering_model(&env.steering);
  Rng rng(1);
  detector.fit(env.train.images(), rng);

  const double auc = detector_auc(detector, env.test, env.novel);
  EXPECT_GT(auc, 0.9);
}

TEST(EndToEnd, HeldOutTargetImagesMostlyAccepted) {
  Environment& env = Environment::instance();
  core::NoveltyDetector detector(
      make_config(core::Preprocessing::kVbp, core::ReconstructionScore::kSsim));
  detector.attach_steering_model(&env.steering);
  Rng rng(2);
  detector.fit(env.train.images(), rng);

  int flagged = 0;
  for (int64_t i = 0; i < env.test.size(); ++i) {
    flagged += detector.classify(env.test.image(i)).is_novel ? 1 : 0;
  }
  // Held-out same-distribution images: the false-positive rate should stay
  // near the calibrated 1% tail, with slack for the small sample.
  EXPECT_LT(static_cast<double>(flagged) / static_cast<double>(env.test.size()), 0.30);
}

TEST(EndToEnd, NoiseShiftsScoresTowardNovel) {
  Environment& env = Environment::instance();
  core::NoveltyDetector detector(
      make_config(core::Preprocessing::kVbp, core::ReconstructionScore::kSsim));
  detector.attach_steering_model(&env.steering);
  Rng rng(3);
  detector.fit(env.train.images(), rng);

  Rng noise_rng(4);
  double clean_mean = 0.0, noisy_mean = 0.0;
  const int64_t n = 10;
  for (int64_t i = 0; i < n; ++i) {
    const Image& clean = env.test.image(i);
    clean_mean += detector.score(clean);
    noisy_mean += detector.score(add_gaussian_noise(clean, 0.2, noise_rng));
  }
  EXPECT_GT(clean_mean / static_cast<double>(n), noisy_mean / static_cast<double>(n));
}

// ---------------------------------------------------------------------------
// Property sweep: every (preprocessing, score) configuration must beat chance
// at separating the two datasets, must calibrate a finite threshold, and must
// score deterministically.

using ConfigAxis = std::tuple<core::Preprocessing, core::ReconstructionScore>;

std::string config_axis_name(const ::testing::TestParamInfo<ConfigAxis>& info) {
  std::string name = std::get<0>(info.param) == core::Preprocessing::kVbp ? "Vbp" : "Raw";
  name += std::get<1>(info.param) == core::ReconstructionScore::kSsim ? "Ssim" : "Mse";
  return name;
}

class DetectorConfigSweep : public ::testing::TestWithParam<ConfigAxis> {};

TEST_P(DetectorConfigSweep, MeetsExpectedSeparation) {
  // Expected separation ranking follows the paper's Fig. 5: raw+MSE is the
  // weak baseline (near chance on varied data — its reconstructions are
  // uniformly blurry), every VBP or SSIM configuration separates strongly.
  Environment& env = Environment::instance();
  const auto [pre, score] = GetParam();
  core::NoveltyDetector detector(make_config(pre, score));
  detector.attach_steering_model(&env.steering);
  Rng rng(5);
  detector.fit(env.train.images(), rng);
  const double auc = detector_auc(detector, env.test, env.novel);
  const bool is_weak_baseline =
      pre == core::Preprocessing::kRaw && score == core::ReconstructionScore::kMse;
  if (is_weak_baseline) {
    EXPECT_GT(auc, 0.2);  // defined behaviour, no separation guarantee
  } else {
    EXPECT_GT(auc, 0.8);
  }
}

TEST_P(DetectorConfigSweep, ScoringIsDeterministic) {
  Environment& env = Environment::instance();
  const auto [pre, score] = GetParam();
  core::NoveltyDetector detector(make_config(pre, score));
  detector.attach_steering_model(&env.steering);
  Rng rng(6);
  detector.fit(env.train.images(), rng);
  const Image& probe = env.test.image(0);
  EXPECT_DOUBLE_EQ(detector.score(probe), detector.score(probe));
}

TEST_P(DetectorConfigSweep, ThresholdWithinTrainingScoreRange) {
  Environment& env = Environment::instance();
  const auto [pre, score] = GetParam();
  core::NoveltyDetector detector(make_config(pre, score));
  detector.attach_steering_model(&env.steering);
  Rng rng(7);
  detector.fit(env.train.images(), rng);
  const auto scores = detector.scores(env.train.images());
  const auto [lo, hi] = std::minmax_element(scores.begin(), scores.end());
  EXPECT_GE(detector.threshold().threshold(), *lo - 1e-9);
  EXPECT_LE(detector.threshold().threshold(), *hi + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, DetectorConfigSweep,
    ::testing::Values(ConfigAxis{core::Preprocessing::kRaw, core::ReconstructionScore::kMse},
                      ConfigAxis{core::Preprocessing::kRaw, core::ReconstructionScore::kSsim},
                      ConfigAxis{core::Preprocessing::kVbp, core::ReconstructionScore::kMse},
                      ConfigAxis{core::Preprocessing::kVbp, core::ReconstructionScore::kSsim}),
    config_axis_name);

// ---------------------------------------------------------------------------
// Property sweep: threshold percentile controls the training-set flag rate.

class PercentileSweep : public ::testing::TestWithParam<double> {};

TEST_P(PercentileSweep, TrainingFlagRateTracksPercentile) {
  Environment& env = Environment::instance();
  auto config = make_config(core::Preprocessing::kRaw, core::ReconstructionScore::kMse);
  config.threshold_percentile = GetParam();
  core::NoveltyDetector detector(config);
  Rng rng(8);
  detector.fit(env.train.images(), rng);

  int flagged = 0;
  for (int64_t i = 0; i < env.train.size(); ++i) {
    flagged += detector.classify(env.train.image(i)).is_novel ? 1 : 0;
  }
  const double rate = static_cast<double>(flagged) / static_cast<double>(env.train.size());
  EXPECT_NEAR(rate, 1.0 - GetParam(), 0.06);
}

INSTANTIATE_TEST_SUITE_P(Percentiles, PercentileSweep, ::testing::Values(0.80, 0.90, 0.95, 0.99));

}  // namespace
}  // namespace salnov
