// Shared test helpers: numerical gradient checking and tensor comparison.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/layer.hpp"
#include "nn/loss.hpp"
#include "tensor/rng.hpp"
#include "tensor/tensor.hpp"

namespace salnov::test {

/// EXPECT that two tensors have the same shape and elementwise agree
/// within `tol`.
inline void expect_tensors_near(const Tensor& actual, const Tensor& expected, float tol = 1e-4f) {
  ASSERT_EQ(actual.shape(), expected.shape())
      << "shape " << shape_to_string(actual.shape()) << " vs " << shape_to_string(expected.shape());
  for (int64_t i = 0; i < actual.numel(); ++i) {
    EXPECT_NEAR(actual[i], expected[i], tol) << "at flat index " << i;
  }
}

/// Checks a layer's input gradient against central finite differences of the
/// scalar L = sum(seed * forward(x)), where `seed` is a fixed random
/// weighting. Also checks every parameter gradient.
inline void check_layer_gradients(nn::Layer& layer, const Tensor& input, Rng& rng,
                                  double step = 1e-3, double tol = 2e-2) {
  const Tensor base_out = layer.forward(input, nn::Mode::kTrain);
  const Tensor seed = rng.uniform_tensor(base_out.shape(), -1.0, 1.0);

  auto scalar_loss = [&](const Tensor& x) {
    Tensor out = layer.forward(x, nn::Mode::kInfer);
    double acc = 0.0;
    for (int64_t i = 0; i < out.numel(); ++i) acc += static_cast<double>(out[i]) * seed[i];
    return acc;
  };

  // Analytic gradients.
  for (nn::Parameter* p : layer.parameters()) p->zero_grad();
  layer.forward(input, nn::Mode::kTrain);
  const Tensor grad_input = layer.backward(seed);

  // Numeric input gradient.
  Tensor x = input;
  for (int64_t i = 0; i < x.numel(); ++i) {
    const float saved = x[i];
    x[i] = saved + static_cast<float>(step);
    const double up = scalar_loss(x);
    x[i] = saved - static_cast<float>(step);
    const double down = scalar_loss(x);
    x[i] = saved;
    const double numeric = (up - down) / (2.0 * step);
    EXPECT_NEAR(grad_input[i], numeric, tol) << "input gradient at " << i;
  }

  // Numeric parameter gradients. Each in-place perturbation bumps the
  // parameter version (the Parameter contract) so the layer's pre-packed
  // inference weights are rebuilt rather than serving stale values.
  for (nn::Parameter* p : layer.parameters()) {
    for (int64_t i = 0; i < p->value.numel(); ++i) {
      const float saved = p->value[i];
      p->value[i] = saved + static_cast<float>(step);
      p->bump_version();
      const double up = scalar_loss(input);
      p->value[i] = saved - static_cast<float>(step);
      p->bump_version();
      const double down = scalar_loss(input);
      p->value[i] = saved;
      p->bump_version();
      const double numeric = (up - down) / (2.0 * step);
      EXPECT_NEAR(p->grad[i], numeric, tol) << "parameter '" << p->name << "' gradient at " << i;
    }
  }
}

/// Checks a loss's gradient against central finite differences.
inline void check_loss_gradient(const nn::Loss& loss, const Tensor& prediction, const Tensor& target,
                                double step = 1e-3, double tol = 2e-3) {
  const Tensor grad = loss.gradient(prediction, target);
  Tensor p = prediction;
  for (int64_t i = 0; i < p.numel(); ++i) {
    const float saved = p[i];
    p[i] = saved + static_cast<float>(step);
    const double up = loss.value(p, target);
    p[i] = saved - static_cast<float>(step);
    const double down = loss.value(p, target);
    p[i] = saved;
    const double numeric = (up - down) / (2.0 * step);
    EXPECT_NEAR(grad[i], numeric, tol) << "loss gradient at " << i;
  }
}

}  // namespace salnov::test
