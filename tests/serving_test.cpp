// Serving-runtime tests: deadline watchdog, degraded-mode ladder, circuit
// breaker, bounded queue, and health accounting.
//
// Every timing scenario runs under a FakeClock with a deterministic
// TimingFaultInjector: injected stalls are the ONLY thing that advances
// time, so budget overruns, ladder steps, and breaker transitions happen on
// exactly the frames the schedule says — bit-for-bit reproducible on any
// machine, loaded or not.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "calib/threshold_set.hpp"
#include "core/novelty_detector.hpp"
#include "driving/pilotnet.hpp"
#include "faults/timing_faults.hpp"
#include "serving/circuit_breaker.hpp"
#include "serving/clock.hpp"
#include "serving/frame_queue.hpp"
#include "serving/health.hpp"
#include "serving/server.hpp"
#include "serving/supervisor.hpp"

namespace salnov::serving {
namespace {

using core::DetectorVariant;
using core::NoveltyDetector;
using core::NoveltyDetectorConfig;
using core::Preprocessing;
using core::ReconstructionScore;

constexpr int64_t kH = 16;
constexpr int64_t kW = 24;
constexpr int64_t kMs = 1'000'000;  // ns

/// Fitted VBP+SSIM detector + steering model, shared across the suite (the
/// fit is the expensive part). Smooth gradients are familiar; noise is novel.
class ServingFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(41);
    steering_ = new nn::Sequential(
        driving::build_pilotnet(driving::PilotNetConfig::tiny(kH, kW), rng));

    NoveltyDetectorConfig config;
    config.height = kH;
    config.width = kW;
    config.preprocessing = Preprocessing::kVbp;
    config.score = ReconstructionScore::kSsim;
    config.autoencoder = core::AutoencoderConfig::tiny(kH, kW);
    config.train_epochs = 10;
    detector_ = new NoveltyDetector(config);
    detector_->attach_steering_model(steering_);

    std::vector<Image> train;
    for (int i = 0; i < 24; ++i) train.push_back(familiar_frame(rng));
    detector_->fit(train, rng);
  }

  static void TearDownTestSuite() {
    delete detector_;
    detector_ = nullptr;
    delete steering_;
    steering_ = nullptr;
  }

  static Image familiar_frame(Rng& rng) {
    Image img(kH, kW);
    const double slope = rng.uniform(0.8, 1.2);
    for (int64_t y = 0; y < kH; ++y) {
      for (int64_t x = 0; x < kW; ++x) {
        img(y, x) = static_cast<float>(slope * (y + x) / static_cast<double>(kH + kW));
      }
    }
    img.clamp01();
    return img;
  }

  /// Supervisor config with tight 1 ms stage budgets; under the FakeClock a
  /// 10 ms injected stall is the only way a stage can overrun.
  static SupervisorConfig tight_config(const faults::TimingFaultInjector* faults) {
    SupervisorConfig config;
    config.stage_budget_ns = {kMs, kMs, kMs, kMs, kMs};
    config.frame_budget_ns = 1000 * kMs;
    config.timing_faults = faults;
    return config;
  }

  static NoveltyDetector* detector_;
  static nn::Sequential* steering_;
};

NoveltyDetector* ServingFixture::detector_ = nullptr;
nn::Sequential* ServingFixture::steering_ = nullptr;

// ---------------------------------------------------------------------------
// Building blocks.

TEST(TimingFaults, ScheduleIsDeterministic) {
  faults::TimingFaultInjector injector;
  injector.add({/*stage=*/2, /*stall_ns=*/10 * kMs, /*first_frame=*/4, /*last_frame=*/12,
                /*period=*/4});
  EXPECT_EQ(injector.stall_ns(2, 3), 0);
  EXPECT_EQ(injector.stall_ns(2, 4), 10 * kMs);
  EXPECT_EQ(injector.stall_ns(2, 5), 0);
  EXPECT_EQ(injector.stall_ns(2, 8), 10 * kMs);
  EXPECT_EQ(injector.stall_ns(2, 12), 10 * kMs);
  EXPECT_EQ(injector.stall_ns(2, 13), 0);
  EXPECT_EQ(injector.stall_ns(1, 8), 0) << "other stages unaffected";
  // Overlapping faults sum.
  injector.add({2, 5 * kMs, 8, 8, 1});
  EXPECT_EQ(injector.stall_ns(2, 8), 15 * kMs);
}

TEST(TimingFaults, RejectsBadSchedules) {
  faults::TimingFaultInjector injector;
  EXPECT_THROW(injector.add({0, -1, 0, 10, 1}), std::invalid_argument);
  EXPECT_THROW(injector.add({0, 1, 0, 10, 0}), std::invalid_argument);
  EXPECT_THROW(injector.add({0, 1, 10, 4, 1}), std::invalid_argument);
}

TEST(FakeClockTest, SleepAdvancesTime) {
  FakeClock clock(100);
  EXPECT_EQ(clock.now_ns(), 100);
  clock.sleep_ns(50);
  EXPECT_EQ(clock.now_ns(), 150);
  clock.sleep_ns(-5);  // negative sleeps are ignored
  EXPECT_EQ(clock.now_ns(), 150);
}

TEST(CircuitBreakerTest, TripsAfterConsecutiveFailuresOnly) {
  CircuitBreakerConfig config;
  config.failure_threshold = 3;
  config.open_frames = 2;
  CircuitBreaker breaker(config);
  breaker.record_failure();
  breaker.record_failure();
  breaker.record_success();  // resets the streak
  breaker.record_failure();
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 1);
}

TEST(CircuitBreakerTest, HalfOpenProbeLifecycle) {
  CircuitBreakerConfig config;
  config.failure_threshold = 1;
  config.open_frames = 2;
  CircuitBreaker breaker(config);
  breaker.record_failure();
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_FALSE(breaker.allows());
  breaker.begin_frame();
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  breaker.begin_frame();
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_TRUE(breaker.allows());
  // Failed probe re-opens for a fresh backoff window.
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.probe_failures(), 1);
  breaker.begin_frame();
  breaker.begin_frame();
  ASSERT_EQ(breaker.state(), BreakerState::kHalfOpen);
  breaker.record_success();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.probe_successes(), 1);
  EXPECT_EQ(breaker.trips(), 1) << "probe failures are not fresh trips";
}

TEST(CircuitBreakerTest, RepeatedProbeFailuresBackOffWithoutFreshTrips) {
  // A stage that stays broken across many probe windows must keep the
  // breaker cycling open -> half-open -> open, counting probe failures but
  // never inflating the trip counter or shortening the backoff.
  CircuitBreakerConfig config;
  config.failure_threshold = 2;
  config.open_frames = 3;
  CircuitBreaker breaker(config);
  breaker.record_failure();
  breaker.record_failure();
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);

  for (int cycle = 1; cycle <= 5; ++cycle) {
    // A full backoff window must elapse before each probe.
    for (int64_t i = 0; i < config.open_frames - 1; ++i) {
      breaker.begin_frame();
      EXPECT_EQ(breaker.state(), BreakerState::kOpen) << "cycle " << cycle;
      EXPECT_FALSE(breaker.allows());
    }
    breaker.begin_frame();
    ASSERT_EQ(breaker.state(), BreakerState::kHalfOpen) << "cycle " << cycle;
    breaker.record_failure();
    EXPECT_EQ(breaker.state(), BreakerState::kOpen);
    EXPECT_EQ(breaker.probe_failures(), cycle);
    EXPECT_EQ(breaker.trips(), 1);
  }

  // Recovery after the 5th failed probe: the next window's probe succeeds,
  // and the failure streak must start from zero again (a single failure
  // right after closing is below the threshold).
  for (int64_t i = 0; i < config.open_frames; ++i) breaker.begin_frame();
  ASSERT_EQ(breaker.state(), BreakerState::kHalfOpen);
  breaker.record_success();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed) << "streak reset on close";
}

TEST(CircuitBreakerTest, HalfOpenHoldsUntilAProbeResultArrives) {
  // Extra frame ticks while half-open (e.g. frames that skip the guarded
  // stage entirely) must not re-open, re-close, or double-arm the probe.
  CircuitBreakerConfig config;
  config.failure_threshold = 1;
  config.open_frames = 1;
  CircuitBreaker breaker(config);
  breaker.record_failure();
  breaker.begin_frame();
  ASSERT_EQ(breaker.state(), BreakerState::kHalfOpen);
  for (int i = 0; i < 4; ++i) {
    breaker.begin_frame();
    EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
    EXPECT_TRUE(breaker.allows());
  }
  breaker.record_success();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.probe_successes(), 1);
}

TEST(FrameQueueTest, ShedsOldestWhenFull) {
  FrameQueue queue(3);
  for (int64_t id = 0; id < 5; ++id) {
    QueuedFrame item;
    item.id = id;
    item.frame = Image(2, 2);
    const FrameQueue::PushResult result = queue.push(std::move(item));
    EXPECT_TRUE(result.accepted);
    EXPECT_EQ(result.shed, id < 3 ? 0u : 1u);
  }
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.high_water_mark(), 3u);
  EXPECT_EQ(queue.shed_total(), 2);
  QueuedFrame out;
  ASSERT_TRUE(queue.try_pop(out));
  EXPECT_EQ(out.id, 2) << "frames 0 and 1 were shed; the freshest survive";
  ASSERT_TRUE(queue.try_pop(out));
  EXPECT_EQ(out.id, 3);
  ASSERT_TRUE(queue.try_pop(out));
  EXPECT_EQ(out.id, 4);
  EXPECT_FALSE(queue.try_pop(out));
}

TEST(FrameQueueTest, CloseUnblocksAndRejects) {
  FrameQueue queue(2);
  queue.close();
  QueuedFrame item;
  item.frame = Image(2, 2);
  EXPECT_FALSE(queue.push(std::move(item)).accepted);
  QueuedFrame out;
  EXPECT_FALSE(queue.pop_wait(out));
}

TEST(LatencyRingTest, NearestRankPercentiles) {
  LatencyRing ring(8);
  EXPECT_EQ(ring.percentile_ns(0.99), 0) << "empty ring reports 0";
  for (int64_t v = 1; v <= 8; ++v) ring.push(v * 100);
  EXPECT_EQ(ring.percentile_ns(0.50), 400);
  EXPECT_EQ(ring.percentile_ns(0.99), 800);
  // Window rolls: pushing 4 more evicts 100..400.
  for (int64_t v = 9; v <= 12; ++v) ring.push(v * 100);
  EXPECT_EQ(ring.percentile_ns(0.99), 1200);
  EXPECT_EQ(ring.count(), 12);
}

// ---------------------------------------------------------------------------
// Supervisor scenarios (all under FakeClock + injected stalls).

TEST_F(ServingFixture, HealthyStreamServesAtTopOfLadder) {
  FakeClock clock;
  Supervisor supervisor(*detector_, steering_, tight_config(nullptr), &clock);
  Rng rng(43);
  for (int i = 0; i < 8; ++i) {
    const ServeResult result = supervisor.process(familiar_frame(rng));
    EXPECT_EQ(result.mode, ServingMode::kVbpSsim);
    EXPECT_TRUE(result.scored);
    EXPECT_FALSE(result.deadline_overrun);
    EXPECT_FALSE(result.abandoned);
    EXPECT_TRUE(std::isfinite(result.score));
    EXPECT_TRUE(std::isfinite(result.steering));
  }
  const HealthSnapshot health = supervisor.health();
  EXPECT_EQ(health.frames_total, 8);
  EXPECT_EQ(health.frames_scored, 8);
  EXPECT_EQ(health.deadline_overruns, 0);
  EXPECT_EQ(health.step_downs, 0);
  EXPECT_EQ(health.mode, ServingMode::kVbpSsim);
  EXPECT_EQ(health.breaker_state, BreakerState::kClosed);
}

TEST_F(ServingFixture, SaliencyStallStepsDownLadderRungByRung) {
  faults::TimingFaultInjector faults;
  faults.add({static_cast<int>(Stage::kSaliency), 10 * kMs, 0, 1, 1});
  SupervisorConfig config = tight_config(&faults);
  config.breaker.failure_threshold = 10;  // keep the breaker out of this test
  FakeClock clock;
  Supervisor supervisor(*detector_, steering_, config, &clock);
  Rng rng(45);

  // Frame 0: saliency blows its budget -> the frame itself is still served,
  // on the raw+MSE rung, and the ladder steps down to VBP+MSE.
  const ServeResult f0 = supervisor.process(familiar_frame(rng));
  EXPECT_EQ(f0.mode, ServingMode::kRawMse) << "within-frame fallback";
  EXPECT_TRUE(f0.scored);
  EXPECT_TRUE(f0.deadline_overrun);
  EXPECT_EQ(f0.stage_ns[static_cast<size_t>(Stage::kSaliency)], 10 * kMs);
  EXPECT_EQ(supervisor.mode(), ServingMode::kVbpMse);

  // Frame 1: still stalling -> second step down, to raw+MSE.
  const ServeResult f1 = supervisor.process(familiar_frame(rng));
  EXPECT_EQ(f1.mode, ServingMode::kRawMse);
  EXPECT_EQ(supervisor.mode(), ServingMode::kRawMse);

  // Frame 2: the raw rung never touches saliency -> healthy.
  const ServeResult f2 = supervisor.process(familiar_frame(rng));
  EXPECT_EQ(f2.mode, ServingMode::kRawMse);
  EXPECT_FALSE(f2.deadline_overrun);
  EXPECT_EQ(f2.stage_ns[static_cast<size_t>(Stage::kSaliency)], 0) << "stage skipped";

  const HealthSnapshot health = supervisor.health();
  EXPECT_EQ(health.step_downs, 2);
  EXPECT_EQ(health.deadline_overruns, 2);
  EXPECT_EQ(health.stages[static_cast<size_t>(Stage::kSaliency)].overruns, 2);
  EXPECT_EQ(health.frames_scored, 3);
}

TEST_F(ServingFixture, PromotionClimbsBackAfterRecovery) {
  faults::TimingFaultInjector faults;
  faults.add({static_cast<int>(Stage::kSaliency), 10 * kMs, 0, 1, 1});
  SupervisorConfig config = tight_config(&faults);
  config.breaker.failure_threshold = 10;
  config.promote_after_healthy_frames = 3;
  FakeClock clock;
  Supervisor supervisor(*detector_, steering_, config, &clock);
  Rng rng(47);

  for (int i = 0; i < 8; ++i) supervisor.process(familiar_frame(rng));
  // f0,f1 demote to raw+mse; f2..f4 healthy -> vbp+mse; f5..f7 -> vbp+ssim.
  EXPECT_EQ(supervisor.mode(), ServingMode::kVbpSsim);
  const HealthSnapshot health = supervisor.health();
  EXPECT_EQ(health.step_downs, 2);
  EXPECT_EQ(health.promotions, 2);
}

TEST_F(ServingFixture, BreakerTripForcesRawAndProbeRestoresTop) {
  faults::TimingFaultInjector faults;
  faults.add({static_cast<int>(Stage::kSaliency), 10 * kMs, 0, 2, 1});
  SupervisorConfig config = tight_config(&faults);
  config.breaker.failure_threshold = 3;
  config.breaker.open_frames = 2;
  config.demote_after_bad_frames = 100;     // isolate the breaker path
  config.promote_after_healthy_frames = 100;
  FakeClock clock;
  Supervisor supervisor(*detector_, steering_, config, &clock);
  Rng rng(49);

  supervisor.process(familiar_frame(rng));  // f0: failure 1
  supervisor.process(familiar_frame(rng));  // f1: failure 2
  EXPECT_EQ(supervisor.mode(), ServingMode::kVbpSsim) << "hysteresis held the rung";
  const ServeResult f2 = supervisor.process(familiar_frame(rng));  // f2: trips
  EXPECT_EQ(supervisor.breaker_state(), BreakerState::kOpen);
  EXPECT_EQ(supervisor.mode(), ServingMode::kRawMse) << "trip forces the raw rung";
  EXPECT_EQ(f2.mode, ServingMode::kRawMse);

  // f3: breaker open -> saliency untouched.
  const ServeResult f3 = supervisor.process(familiar_frame(rng));
  EXPECT_EQ(f3.stage_ns[static_cast<size_t>(Stage::kSaliency)], 0);
  EXPECT_FALSE(f3.deadline_overrun);

  // f4: open_frames elapsed -> half-open probe; the stall cleared at f2, so
  // the probe succeeds and restores VBP+SSIM directly.
  const ServeResult f4 = supervisor.process(familiar_frame(rng));
  EXPECT_EQ(f4.mode, ServingMode::kVbpSsim);
  EXPECT_TRUE(f4.scored);
  EXPECT_EQ(supervisor.mode(), ServingMode::kVbpSsim);
  EXPECT_EQ(supervisor.breaker_state(), BreakerState::kClosed);

  const HealthSnapshot health = supervisor.health();
  EXPECT_EQ(health.breaker_trips, 1);
  EXPECT_EQ(health.probe_successes, 1);
  EXPECT_EQ(health.probe_failures, 0);
}

TEST_F(ServingFixture, FailedProbeReopensForAnotherBackoff) {
  faults::TimingFaultInjector faults;
  faults.add({static_cast<int>(Stage::kSaliency), 10 * kMs, 0, 4, 1});
  SupervisorConfig config = tight_config(&faults);
  config.breaker.failure_threshold = 3;
  config.breaker.open_frames = 2;
  config.demote_after_bad_frames = 100;
  config.promote_after_healthy_frames = 100;
  FakeClock clock;
  Supervisor supervisor(*detector_, steering_, config, &clock);
  Rng rng(51);

  for (int i = 0; i < 5; ++i) supervisor.process(familiar_frame(rng));
  // f0..f2 trip the breaker; f4 is the first probe and the stall is still
  // active, so it fails and the breaker re-opens.
  EXPECT_EQ(supervisor.breaker_state(), BreakerState::kOpen);
  EXPECT_EQ(supervisor.health().probe_failures, 1);

  // Two more open frames -> second probe at f6, now past the stall window.
  supervisor.process(familiar_frame(rng));
  const ServeResult f6 = supervisor.process(familiar_frame(rng));
  EXPECT_EQ(f6.mode, ServingMode::kVbpSsim);
  EXPECT_EQ(supervisor.breaker_state(), BreakerState::kClosed);
  const HealthSnapshot health = supervisor.health();
  EXPECT_EQ(health.breaker_trips, 1);
  EXPECT_EQ(health.probe_failures, 1);
  EXPECT_EQ(health.probe_successes, 1);
}

TEST_F(ServingFixture, FrameDeadlineAbandonsMidPipeline) {
  faults::TimingFaultInjector faults;
  faults.add({static_cast<int>(Stage::kReconstruct), 10 * kMs, 0, 0, 1});
  SupervisorConfig config = tight_config(&faults);
  config.frame_budget_ns = 5 * kMs;
  FakeClock clock;
  Supervisor supervisor(*detector_, steering_, config, &clock);
  Rng rng(53);

  const ServeResult f0 = supervisor.process(familiar_frame(rng));
  EXPECT_TRUE(f0.abandoned);
  EXPECT_FALSE(f0.scored);
  EXPECT_TRUE(f0.deadline_overrun);
  EXPECT_EQ(f0.stage_ns[static_cast<size_t>(Stage::kScore)], 0) << "score stage skipped";

  const ServeResult f1 = supervisor.process(familiar_frame(rng));
  EXPECT_FALSE(f1.abandoned);
  EXPECT_TRUE(f1.scored);

  const HealthSnapshot health = supervisor.health();
  EXPECT_EQ(health.frames_abandoned, 1);
  EXPECT_EQ(health.frames_total, 2);
  EXPECT_EQ(health.step_downs, 1) << "an abandoned frame is a bad frame";
}

TEST_F(ServingFixture, LadderExhaustionHoldsAndRecovers) {
  // Reconstruct runs on every rung, so a sustained stall walks the ladder
  // all the way down to sensor hold; once it clears the supervisor climbs
  // back and the monitor releases.
  faults::TimingFaultInjector faults;
  faults.add({static_cast<int>(Stage::kReconstruct), 10 * kMs, 0, 9, 1});
  SupervisorConfig config = tight_config(&faults);
  config.promote_after_healthy_frames = 2;
  config.breaker.failure_threshold = 100;
  FakeClock clock;
  Supervisor supervisor(*detector_, steering_, config, &clock);
  Rng rng(55);

  bool saw_hold_with_sensor_fault = false;
  for (int i = 0; i < 10; ++i) {
    const ServeResult result = supervisor.process(familiar_frame(rng));
    if (result.mode == ServingMode::kSensorHold) {
      EXPECT_FALSE(result.scored) << "held frames make no calibrated claim";
      if (result.monitor_state == core::MonitorState::kSensorFault) {
        EXPECT_EQ(result.fallback_path, core::FallbackPath::kSensorFault);
        saw_hold_with_sensor_fault = true;
      }
    }
  }
  EXPECT_EQ(supervisor.mode(), ServingMode::kSensorHold);
  EXPECT_TRUE(saw_hold_with_sensor_fault)
      << "sustained hold must engage the monitor's sensor path";
  const HealthSnapshot mid = supervisor.health();
  EXPECT_EQ(mid.step_downs, 3);
  EXPECT_GT(mid.frames_held, 0);

  // Stall clears: promote back up to the top and release the monitor.
  for (int i = 0; i < 20; ++i) supervisor.process(familiar_frame(rng));
  EXPECT_EQ(supervisor.mode(), ServingMode::kVbpSsim);
  EXPECT_NE(supervisor.monitor().state(), core::MonitorState::kSensorFault);
  const HealthSnapshot health = supervisor.health();
  EXPECT_EQ(health.frames_total, 30);
  EXPECT_EQ(health.frames_scored + health.frames_held + health.frames_abandoned, 30);
}

TEST_F(ServingFixture, SensorBadFramesAreLadderNeutral) {
  FakeClock clock;
  Supervisor supervisor(*detector_, steering_, tight_config(nullptr), &clock);
  Rng rng(57);
  supervisor.process(familiar_frame(rng));
  const ServeResult bad = supervisor.process(Image(kH + 2, kW));  // wrong size
  EXPECT_TRUE(bad.sensor_bad);
  EXPECT_FALSE(bad.scored);
  EXPECT_EQ(supervisor.mode(), ServingMode::kVbpSsim) << "ladder unaffected";
  const HealthSnapshot health = supervisor.health();
  EXPECT_EQ(health.frames_sensor_bad, 1);
  EXPECT_EQ(health.step_downs, 0);
}

TEST_F(ServingFixture, PeriodicSpikesCountExactlyAndNeverDemote) {
  faults::TimingFaultInjector faults;
  faults.add({static_cast<int>(Stage::kSaliency), 10 * kMs, 0, 11, 4});  // f0, f4, f8
  SupervisorConfig config = tight_config(&faults);
  config.demote_after_bad_frames = 2;  // isolated spikes never make a streak
  config.breaker.failure_threshold = 10;
  FakeClock clock;
  Supervisor supervisor(*detector_, steering_, config, &clock);
  Rng rng(59);

  for (int i = 0; i < 12; ++i) supervisor.process(familiar_frame(rng));
  const HealthSnapshot health = supervisor.health();
  EXPECT_EQ(health.deadline_overruns, 3);
  EXPECT_EQ(health.stages[static_cast<size_t>(Stage::kSaliency)].overruns, 3);
  EXPECT_EQ(health.step_downs, 0);
  EXPECT_EQ(health.mode, ServingMode::kVbpSsim);
  EXPECT_EQ(health.frames_scored, 12);

  const std::string json = health.to_json();
  EXPECT_NE(json.find("\"deadline_overruns\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"mode\":\"vbp+ssim\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"saliency\",\"overruns\":3"), std::string::npos) << json;
}

TEST_F(ServingFixture, IdenticalSchedulesProduceIdenticalHealth) {
  const auto run = [&] {
    faults::TimingFaultInjector faults;
    faults.add({static_cast<int>(Stage::kSaliency), 10 * kMs, 1, 6, 2});
    faults.add({static_cast<int>(Stage::kScore), 3 * kMs, 4, 4, 1});
    SupervisorConfig config = tight_config(&faults);
    config.promote_after_healthy_frames = 3;
    FakeClock clock;
    Supervisor supervisor(*detector_, steering_, config, &clock);
    Rng rng(61);
    for (int i = 0; i < 16; ++i) supervisor.process(familiar_frame(rng));
    return supervisor.health().to_json();
  };
  EXPECT_EQ(run(), run());
}

// ---------------------------------------------------------------------------
// ServingServer: queue + worker thread. These also run under TSan (see
// tools/run_tsan.sh).

TEST_F(ServingFixture, ServerProcessesEverythingItAccepts) {
  Supervisor supervisor(*detector_, steering_, tight_config(nullptr));
  ServerConfig server_config;
  server_config.queue_capacity = 8;
  ServingServer server(supervisor, server_config);
  Rng rng(63);
  int64_t shed = 0;
  for (int i = 0; i < 50; ++i) shed += static_cast<int64_t>(server.submit(familiar_frame(rng)));
  server.drain();
  const HealthSnapshot health = server.health();
  EXPECT_EQ(health.frames_total + shed, 50);
  EXPECT_EQ(health.queue_shed, shed);
  EXPECT_LE(health.queue_high_water, 8);
  EXPECT_EQ(health.queue_capacity, 8);
  const std::vector<ServeResult> results = server.take_results();
  EXPECT_EQ(static_cast<int64_t>(results.size()), health.frames_total);
  server.stop();
}

TEST_F(ServingFixture, ServerBurstRespectsQueueBound) {
  // Stall every frame's saliency stage on a real clock so the worker is
  // genuinely slower than the producer; the queue must cap, shed the oldest,
  // and never exceed its capacity.
  faults::TimingFaultInjector faults;
  faults.add({static_cast<int>(Stage::kSaliency), 2 * kMs, 0,
              std::numeric_limits<int64_t>::max() - 1, 1});
  SupervisorConfig config = tight_config(&faults);
  config.breaker.failure_threshold = 1'000'000;
  Supervisor supervisor(*detector_, steering_, config);
  ServerConfig server_config;
  server_config.queue_capacity = 4;
  server_config.keep_results = false;
  ServingServer server(supervisor, server_config);
  Rng rng(65);
  int64_t shed = 0;
  for (int i = 0; i < 64; ++i) shed += static_cast<int64_t>(server.submit(familiar_frame(rng)));
  server.drain();
  const HealthSnapshot health = server.health();
  EXPECT_EQ(health.frames_total + shed, 64);
  EXPECT_LE(health.queue_high_water, 4);
  EXPECT_TRUE(server.take_results().empty());
  server.stop();
}

TEST_F(ServingFixture, PersistentStallFailsEveryProbeWithoutRetripping) {
  // Supervisor-level view of the repeated-probe-failure cycle: a saliency
  // stall that never clears must trip the breaker exactly once, fail every
  // half-open probe thereafter, and keep serving calibrated raw+MSE scores
  // the whole time.
  faults::TimingFaultInjector faults;
  faults.add({static_cast<int>(Stage::kSaliency), 10 * kMs, 0,
              std::numeric_limits<int64_t>::max() - 1, 1});
  FakeClock clock;
  SupervisorConfig config = tight_config(&faults);
  config.breaker.failure_threshold = 2;
  config.breaker.open_frames = 2;
  // An isolated failed-probe frame must not demote the ladder below raw+MSE
  // (each probe blows the stage budget, but two bad frames never run
  // consecutively once the breaker is open).
  config.demote_after_bad_frames = 2;
  Supervisor supervisor(*detector_, steering_, config, &clock);
  Rng rng(71);
  for (int i = 0; i < 20; ++i) {
    const ServeResult result = supervisor.process(familiar_frame(rng));
    if (i >= 2) {
      EXPECT_EQ(result.mode, ServingMode::kRawMse) << "frame " << i;
      EXPECT_TRUE(result.scored) << "frame " << i;
    }
  }
  const HealthSnapshot health = supervisor.health();
  EXPECT_EQ(health.breaker_trips, 1) << "failed probes must not count as trips";
  EXPECT_GE(health.probe_failures, 3);
  EXPECT_EQ(health.probe_successes, 0);
  EXPECT_EQ(health.promotions, 0);
  EXPECT_NE(health.breaker_state, BreakerState::kClosed);
  EXPECT_EQ(health.mode, ServingMode::kRawMse);
}

TEST_F(ServingFixture, ProbeDuringQueueBurstRestoresLadder) {
  // The half-open probe fires while the server is absorbing a producer
  // burst: shedding changes which *camera* frames are processed, but stalls
  // key off the supervisor's own frame counter, so the trip -> backoff ->
  // probe -> restore cycle happens on exactly the same processed-frame
  // indices regardless of queue pressure.
  faults::TimingFaultInjector faults;
  faults.add({static_cast<int>(Stage::kSaliency), 10 * kMs, /*first_frame=*/0,
              /*last_frame=*/1, /*period=*/1});
  FakeClock clock;
  SupervisorConfig config = tight_config(&faults);
  config.breaker.failure_threshold = 2;
  config.breaker.open_frames = 2;
  config.promote_after_healthy_frames = 2;
  Supervisor supervisor(*detector_, steering_, config, &clock);
  ServerConfig server_config;
  server_config.queue_capacity = 8;
  ServingServer server(supervisor, server_config);
  Rng rng(73);
  int64_t shed = 0;
  for (int i = 0; i < 60; ++i) shed += static_cast<int64_t>(server.submit(familiar_frame(rng)));
  server.drain();
  const HealthSnapshot health = server.health();
  EXPECT_EQ(health.frames_total + shed, 60);
  // Even in the worst burst case the drain processes >= queue_capacity
  // frames, which covers trip (frame 1), backoff (2..3), and the successful
  // probe that restores the top rung.
  ASSERT_GE(health.frames_total, 8);
  EXPECT_EQ(health.breaker_trips, 1);
  EXPECT_EQ(health.probe_failures, 0);
  EXPECT_EQ(health.probe_successes, 1);
  EXPECT_EQ(health.breaker_state, BreakerState::kClosed);
  EXPECT_EQ(health.mode, ServingMode::kVbpSsim);
  const std::vector<ServeResult> results = server.take_results();
  EXPECT_EQ(static_cast<int64_t>(results.size()), health.frames_total);
  server.stop();
}

TEST_F(ServingFixture, HotSwapChangesVerdictsWithoutInterruptingService) {
  // Drift path end to end on the primary rung: a stream of off-distribution
  // frames is flagged novel against the fitted threshold until the shadow
  // calibration swaps in a threshold fitted to the new distribution — after
  // which the same frames read as nominal. Service never pauses.
  SupervisorConfig config = tight_config(nullptr);
  config.monitor.trigger_frames = 1'000'000;  // keep the monitor quiet
  config.calibration.enabled = true;
  config.calibration.warmup = 16;
  config.calibration.min_samples = 24;
  config.calibration.check_every_frames = 8;
  config.calibration.trigger_checks = 2;
  config.calibration.release_checks = 2;
  FakeClock clock;
  Supervisor supervisor(*detector_, steering_, config, &clock);
  Rng rng(75);

  const auto off_distribution_frame = [&] {
    Image img = familiar_frame(rng);
    for (int64_t i = 0; i < img.numel(); ++i) {
      img.tensor()[i] = 1.0f - img.tensor()[i];  // inverted gradient
    }
    return img;
  };

  int64_t novel_before_swap = 0;
  int64_t scored_before_swap = 0;
  int64_t novel_after_swap = 0;
  int64_t scored_after_swap = 0;
  for (int i = 0; i < 160; ++i) {
    const ServeResult result = supervisor.process(off_distribution_frame());
    ASSERT_TRUE(result.scored) << "frame " << i << ": service must not pause for a swap";
    if (result.threshold_epoch == 0) {
      ++scored_before_swap;
      novel_before_swap += result.novel ? 1 : 0;
    } else {
      ++scored_after_swap;
      novel_after_swap += result.novel ? 1 : 0;
    }
  }
  const HealthSnapshot health = supervisor.health();
  ASSERT_GE(health.threshold_swaps, 1) << "sustained shift must trigger a recalibration";
  ASSERT_GT(scored_before_swap, 0);
  ASSERT_GT(scored_after_swap, 0);
  EXPECT_GT(static_cast<double>(novel_before_swap) / scored_before_swap, 0.9)
      << "fitted threshold flags the shifted stream";
  EXPECT_LT(static_cast<double>(novel_after_swap) / scored_after_swap, 0.25)
      << "swapped threshold is calibrated to the shifted stream";
}

TEST_F(ServingFixture, ServerConcurrentHotSwapNeverBlocksScoring) {
  // Hot-swap thread-safety under load (runs under TSan, see
  // tools/run_tsan.sh): one thread streams frames through the server while
  // another repeatedly installs fresh ThresholdSets and reads health
  // snapshots. The scorer's acquire is wait-free, so every accepted frame is
  // processed and the served epoch only moves forward.
  Supervisor supervisor(*detector_, steering_, tight_config(nullptr));
  ServerConfig server_config;
  server_config.queue_capacity = 16;
  ServingServer server(supervisor, server_config);

  constexpr int64_t kInstalls = 200;
  std::thread installer([&] {
    for (int64_t epoch = 1; epoch <= kInstalls; ++epoch) {
      auto set = std::make_shared<calib::ThresholdSet>();
      set->epoch = epoch;
      for (int v = 0; v < core::kDetectorVariantCount; ++v) {
        set->thresholds[static_cast<size_t>(v)] =
            detector_->variant_calibration(static_cast<core::DetectorVariant>(v)).threshold;
      }
      supervisor.install_thresholds(std::move(set));
      (void)server.health();
    }
  });

  Rng rng(77);
  int64_t shed = 0;
  for (int i = 0; i < 40; ++i) shed += static_cast<int64_t>(server.submit(familiar_frame(rng)));
  installer.join();
  server.drain();

  const HealthSnapshot health = server.health();
  EXPECT_EQ(health.frames_total + shed, 40);
  EXPECT_EQ(health.threshold_swaps, kInstalls);
  const std::vector<ServeResult> results = server.take_results();
  int64_t last_epoch = 0;
  for (const ServeResult& result : results) {
    EXPECT_GE(result.threshold_epoch, last_epoch) << "served epoch must be monotone";
    last_epoch = std::max(last_epoch, result.threshold_epoch);
  }
  server.stop();
}

TEST_F(ServingFixture, ServerConcurrentProducersAndSnapshots) {
  Supervisor supervisor(*detector_, steering_, tight_config(nullptr));
  ServerConfig server_config;
  server_config.queue_capacity = 16;
  ServingServer server(supervisor, server_config);

  std::atomic<int64_t> shed{0};
  const auto produce = [&](int seed) {
    Rng rng(seed);
    for (int i = 0; i < 25; ++i) {
      shed += static_cast<int64_t>(server.submit(familiar_frame(rng)));
    }
  };
  std::thread a(produce, 67);
  std::thread b(produce, 69);
  for (int i = 0; i < 10; ++i) (void)server.health();  // concurrent snapshots
  a.join();
  b.join();
  server.drain();
  const HealthSnapshot health = server.health();
  EXPECT_EQ(health.frames_total + shed.load(), 50);
  server.stop();
}

}  // namespace
}  // namespace salnov::serving
