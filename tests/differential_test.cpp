// Differential suites: two independent implementations of the same math are
// run against each other over randomized inputs from the shared property
// core, so a silent divergence in the optimized path (SIMD GEMM, SAT-based
// SSIM, analytic backward passes) is caught by its slow-but-obvious twin.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "metrics/ssim.hpp"
#include "nn/dense.hpp"
#include "prop.hpp"
#include "tensor/gemm.hpp"
#include "tensor/rng.hpp"
#include "test_util.hpp"

namespace salnov {
namespace {

/// Restores the GEMM kernel selection on scope exit.
struct KernelGuard {
  GemmKernel saved = active_gemm_kernel();
  ~KernelGuard() { set_gemm_kernel(saved); }
};

// --- SIMD vs scalar GEMM ----------------------------------------------------

struct GemmCase {
  int64_t m = 0, n = 0, k = 0;
  std::vector<float> a, b;
};

std::string describe(const GemmCase& c) {
  return "{m=" + std::to_string(c.m) + ", n=" + std::to_string(c.n) +
         ", k=" + std::to_string(c.k) + "}";
}

GemmCase gen_gemm_case(Rng& rng) {
  GemmCase c;
  c.m = rng.uniform_int(0, 40);
  c.n = rng.uniform_int(0, 40);
  c.k = rng.uniform_int(0, 40);
  c.a.resize(static_cast<size_t>(c.m * c.k) + 1);  // +1: non-null even when empty
  c.b.resize(static_cast<size_t>(c.k * c.n) + 1);
  for (float& v : c.a) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (float& v : c.b) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return c;
}

TEST(DifferentialGemm, SimdMatchesScalarWithinFmaTolerance) {
  if (!gemm_simd_available()) GTEST_SKIP() << "SIMD kernel not available on this CPU";
  KernelGuard guard;
  prop::for_all<GemmCase>(
      "simd gemm ~= scalar gemm", gen_gemm_case,
      [](const GemmCase& c) {
        std::vector<float> scalar_out(static_cast<size_t>(c.m * c.n), 42.0f);
        std::vector<float> simd_out(static_cast<size_t>(c.m * c.n), -42.0f);
        set_gemm_kernel(GemmKernel::kScalar);
        gemm(c.a.data(), c.b.data(), scalar_out.data(), c.m, c.n, c.k);
        set_gemm_kernel(GemmKernel::kSimd);
        gemm(c.a.data(), c.b.data(), simd_out.data(), c.m, c.n, c.k);
        // Operands in [-1, 1] bound |c| by k; FMA only tightens per-term
        // rounding of the ascending-k sums.
        const float tol = 1e-5f * static_cast<float>(std::max<int64_t>(c.k, 1)) + 1e-6f;
        for (size_t i = 0; i < scalar_out.size(); ++i) {
          if (std::fabs(scalar_out[i] - simd_out[i]) > tol) return false;
        }
        return true;
      },
      {60, 31});
}

TEST(DifferentialGemm, KernelsAreSelfDeterministic) {
  // Each kernel must be bit-identical run-to-run (the trace-replay contract);
  // the cross-kernel comparison above is the only tolerance-bounded one.
  KernelGuard guard;
  prop::for_all<GemmCase>(
      "gemm(x) == gemm(x) per kernel", gen_gemm_case,
      [](const GemmCase& c) {
        for (const GemmKernel kernel : {GemmKernel::kScalar, GemmKernel::kSimd}) {
          if (kernel == GemmKernel::kSimd && !gemm_simd_available()) continue;
          set_gemm_kernel(kernel);
          std::vector<float> first(static_cast<size_t>(c.m * c.n), 1.0f);
          std::vector<float> second(static_cast<size_t>(c.m * c.n), 2.0f);
          gemm(c.a.data(), c.b.data(), first.data(), c.m, c.n, c.k);
          gemm(c.a.data(), c.b.data(), second.data(), c.m, c.n, c.k);
          if (!first.empty() &&
              std::memcmp(first.data(), second.data(), first.size() * sizeof(float)) != 0) {
            return false;
          }
        }
        return true;
      },
      {30, 32});
}

// --- SAT-SSIM vs direct scalar SSIM ----------------------------------------

struct SsimCase {
  Image x{1, 1};
  Image y{1, 1};
  SsimOptions options;
};

std::string describe(const SsimCase& c) {
  return "{h=" + std::to_string(c.x.height()) + ", w=" + std::to_string(c.x.width()) +
         ", window=" + std::to_string(c.options.window) +
         ", stride=" + std::to_string(c.options.stride) + "}";
}

TEST(DifferentialSsim, SatMatchesDirectReference) {
  prop::for_all<SsimCase>(
      "SAT ssim ~= windowed reference ssim",
      [](Rng& rng) {
        SsimCase c;
        const int64_t h = rng.uniform_int(8, 48);
        const int64_t w = rng.uniform_int(8, 48);
        c.x = Image(h, w, rng.uniform_tensor({h * w}, 0.0, 1.0));
        c.y = Image(h, w, rng.uniform_tensor({h * w}, 0.0, 1.0));
        c.options.window = static_cast<int>(rng.uniform_int(3, 11));
        c.options.stride = static_cast<int>(rng.uniform_int(1, 4));
        return c;
      },
      [](const SsimCase& c) {
        return std::abs(ssim(c.x, c.y, c.options) - ssim_reference(c.x, c.y, c.options)) <= 1e-9;
      },
      {40, 33});
}

// --- Dense backward vs finite differences ----------------------------------

TEST(DifferentialDense, BackwardMatchesFiniteDifferences) {
  // Random shapes and inputs; check_layer_gradients compares the analytic
  // input and parameter gradients against central differences.
  const uint64_t run = prop::run_seed(34);
  for (int trial = 0; trial < 4; ++trial) {
    const uint64_t seed = prop::trial_seed(run, trial);
    Rng rng(seed);
    const int64_t in_features = rng.uniform_int(2, 7);
    const int64_t out_features = rng.uniform_int(2, 7);
    const int64_t batch = rng.uniform_int(1, 4);
    nn::Dense dense(in_features, out_features, rng);
    const Tensor input = rng.uniform_tensor({batch, in_features}, -1.0, 1.0);
    test::check_layer_gradients(dense, input, rng);
    if (::testing::Test::HasFailure()) {
      ADD_FAILURE() << "reproduce with: SALNOV_PROP_SEED=" << seed;
      return;
    }
  }
}

}  // namespace
}  // namespace salnov
