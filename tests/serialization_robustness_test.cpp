// Failure-injection tests for every serialized format in the library:
// model files, pipeline files, and PNM images. A loader must never crash or
// silently accept corrupted input — every injected fault must surface as a
// typed exception.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "calib/p2_sketch.hpp"
#include "calib/threshold_set.hpp"
#include "core/novelty_detector.hpp"
#include "core/threshold.hpp"
#include "core/pipeline_io.hpp"
#include "driving/pilotnet.hpp"
#include "image/image_io.hpp"
#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/model_io.hpp"
#include "tensor/rng.hpp"
#include "tensor/serialize.hpp"

namespace salnov {
namespace {

std::string serialized_model() {
  Rng rng(1);
  nn::Sequential model;
  nn::Conv2dConfig cfg{1, 2, 3, 3, 1, 0};
  model.emplace<nn::Conv2d>(cfg, rng);
  model.emplace<nn::ReLU>();
  std::stringstream ss;
  nn::save_model(ss, model);
  return ss.str();
}

std::string serialized_pipeline() {
  core::NoveltyDetectorConfig config;
  config.height = 16;
  config.width = 20;
  config.preprocessing = core::Preprocessing::kRaw;
  config.score = core::ReconstructionScore::kMse;
  config.autoencoder = core::AutoencoderConfig::tiny(16, 20);
  config.train_epochs = 2;
  core::NoveltyDetector detector(config);
  Rng rng(2);
  std::vector<Image> images;
  for (int i = 0; i < 6; ++i) images.emplace_back(16, 20, rng.uniform_tensor({320}, 0.0, 1.0));
  detector.fit(images, rng);
  std::stringstream ss;
  core::PipelineIo::save(ss, detector, nullptr);
  return ss.str();
}

// ---------------------------------------------------------------------------
// Truncation sweeps: cutting a valid file at any of several points must
// throw, never crash or return a half-initialized object.

class ModelTruncationSweep : public ::testing::TestWithParam<int> {};

TEST_P(ModelTruncationSweep, TruncatedModelRejected) {
  static const std::string full = serialized_model();
  const size_t keep = full.size() * static_cast<size_t>(GetParam()) / 100;
  std::stringstream ss(full.substr(0, keep));
  EXPECT_THROW(nn::load_model(ss), SerializationError);
}

INSTANTIATE_TEST_SUITE_P(Fractions, ModelTruncationSweep,
                         ::testing::Values(1, 5, 10, 25, 50, 75, 90, 99));

class PipelineTruncationSweep : public ::testing::TestWithParam<int> {};

TEST_P(PipelineTruncationSweep, TruncatedPipelineRejected) {
  static const std::string full = serialized_pipeline();
  const size_t keep = full.size() * static_cast<size_t>(GetParam()) / 100;
  std::stringstream ss(full.substr(0, keep));
  EXPECT_THROW(core::PipelineIo::load(ss), SerializationError);
}

INSTANTIATE_TEST_SUITE_P(Fractions, PipelineTruncationSweep,
                         ::testing::Values(1, 5, 10, 25, 50, 75, 90, 99));

// ---------------------------------------------------------------------------
// Targeted corruption.

TEST(ModelCorruption, FlippedMagicByteRejected) {
  std::string data = serialized_model();
  data[5] ^= 0x40;  // inside the magic string
  std::stringstream ss(data);
  EXPECT_THROW(nn::load_model(ss), SerializationError);
}

TEST(ModelCorruption, BumpedVersionRejected) {
  std::string data = serialized_model();
  // Header layout: u32 strlen, magic bytes, u32 version.
  const size_t version_offset = 4 + std::string("salnov-model").size();
  data[version_offset] = 99;
  std::stringstream ss(data);
  EXPECT_THROW(nn::load_model(ss), SerializationError);
}

TEST(ModelCorruption, UnknownLayerTypeRejected) {
  Rng rng(3);
  std::stringstream ss;
  write_header(ss, "salnov-model", 1);
  write_u32(ss, 1);
  write_string(ss, "not-a-layer");
  EXPECT_THROW(nn::load_model(ss), SerializationError);
}

TEST(ModelCorruption, ParameterNameMismatchRejected) {
  Rng rng(4);
  std::stringstream ss;
  write_header(ss, "salnov-model", 1);
  write_u32(ss, 1);
  write_string(ss, "dense");
  write_i64(ss, 2);  // in
  write_i64(ss, 2);  // out
  write_u32(ss, 2);  // param count
  write_string(ss, "weight-wrong-name");
  write_tensor(ss, Tensor::zeros({2, 2}));
  write_string(ss, "bias");
  write_tensor(ss, Tensor::zeros({2}));
  EXPECT_THROW(nn::load_model(ss), SerializationError);
}

TEST(ModelCorruption, ParameterShapeMismatchRejected) {
  std::stringstream ss;
  write_header(ss, "salnov-model", 1);
  write_u32(ss, 1);
  write_string(ss, "dense");
  write_i64(ss, 2);
  write_i64(ss, 2);
  write_u32(ss, 2);
  write_string(ss, "weight");
  write_tensor(ss, Tensor::zeros({3, 3}));  // wrong shape
  write_string(ss, "bias");
  write_tensor(ss, Tensor::zeros({2}));
  EXPECT_THROW(nn::load_model(ss), SerializationError);
}

TEST(ModelCorruption, WrongParameterCountRejected) {
  std::stringstream ss;
  write_header(ss, "salnov-model", 1);
  write_u32(ss, 1);
  write_string(ss, "relu");
  write_u32(ss, 3);  // ReLU has zero parameters
  EXPECT_THROW(nn::load_model(ss), SerializationError);
}

// ---------------------------------------------------------------------------
// Quantized pipeline blocks (format v3): the act-scale blocks for the
// autoencoder and steering model sit at the very end of the stream, so
// tail-targeted truncation and corruption exercise them precisely. Legacy
// writes (v2) must still round-trip with the float ladder intact.

/// A fitted VBP+steering pipeline so both quant scale blocks are non-empty.
struct QuantPipelineBytes {
  std::string bytes;
  size_t steer_scales = 0;  ///< f32 count in the final (steering) block
};

const QuantPipelineBytes& serialized_quant_pipeline() {
  static const QuantPipelineBytes cached = [] {
    Rng rng(9);
    static nn::Sequential steering =
        driving::build_pilotnet(driving::PilotNetConfig::tiny(16, 20), rng);
    core::NoveltyDetectorConfig config;
    config.height = 16;
    config.width = 20;
    config.preprocessing = core::Preprocessing::kVbp;
    config.score = core::ReconstructionScore::kSsim;
    config.autoencoder = core::AutoencoderConfig::tiny(16, 20);
    config.train_epochs = 2;
    core::NoveltyDetector detector(config);
    detector.attach_steering_model(&steering);
    std::vector<Image> images;
    for (int i = 0; i < 6; ++i) images.emplace_back(16, 20, rng.uniform_tensor({320}, 0.0, 1.0));
    detector.fit(images, rng);
    EXPECT_TRUE(detector.has_quant_calibrations());
    std::stringstream ss;
    core::PipelineIo::save(ss, detector, &steering);
    QuantPipelineBytes out;
    out.bytes = ss.str();
    out.steer_scales = static_cast<size_t>(nn::QuantizedForward::count_quantizable(steering));
    EXPECT_GT(out.steer_scales, 0u);
    return out;
  }();
  return cached;
}

class QuantBlockTruncationSweep : public ::testing::TestWithParam<int> {};

TEST_P(QuantBlockTruncationSweep, TruncatedQuantScaleBlockRejected) {
  // Cut GetParam() bytes off the end — every cut lands inside the ae or
  // steering scale block (the last blocks in the stream).
  const std::string& full = serialized_quant_pipeline().bytes;
  std::stringstream ss(full.substr(0, full.size() - static_cast<size_t>(GetParam())));
  EXPECT_THROW(core::PipelineIo::load(ss), SerializationError);
}

INSTANTIATE_TEST_SUITE_P(TailBytes, QuantBlockTruncationSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 9, 13));

TEST(QuantBlockCorruption, NonFiniteScaleRejected) {
  const QuantPipelineBytes& pipeline = serialized_quant_pipeline();
  std::string data = pipeline.bytes;
  const float nan = std::numeric_limits<float>::quiet_NaN();
  std::memcpy(&data[data.size() - sizeof(float)], &nan, sizeof(float));
  std::stringstream ss(data);
  EXPECT_THROW(core::PipelineIo::load(ss), SerializationError);
}

TEST(QuantBlockCorruption, NonPositiveScaleRejected) {
  const QuantPipelineBytes& pipeline = serialized_quant_pipeline();
  std::string data = pipeline.bytes;
  const float negative = -1.0f;
  std::memcpy(&data[data.size() - sizeof(float)], &negative, sizeof(float));
  std::stringstream ss(data);
  EXPECT_THROW(core::PipelineIo::load(ss), SerializationError);
}

TEST(QuantBlockCorruption, ImplausibleScaleCountRejected) {
  const QuantPipelineBytes& pipeline = serialized_quant_pipeline();
  std::string data = pipeline.bytes;
  // The steering count u32 sits right before its f32 scales, at the tail.
  const size_t count_offset = data.size() - pipeline.steer_scales * sizeof(float) - 4;
  const uint32_t huge = 1u << 20;
  std::memcpy(&data[count_offset], &huge, sizeof(uint32_t));
  std::stringstream ss(data);
  EXPECT_THROW(core::PipelineIo::load(ss), SerializationError);
}

TEST(QuantBlockCorruption, MismatchedScaleCountRejected) {
  const QuantPipelineBytes& pipeline = serialized_quant_pipeline();
  std::string data = pipeline.bytes;
  // A plausible-but-wrong count (one short, under the 4096 cap) must fail
  // the per-model count check, not load a half-quantized pipeline.
  const size_t count_offset = data.size() - pipeline.steer_scales * sizeof(float) - 4;
  const uint32_t short_count = static_cast<uint32_t>(pipeline.steer_scales - 1);
  std::memcpy(&data[count_offset], &short_count, sizeof(uint32_t));
  data.resize(data.size() - sizeof(float));  // keep the stream length consistent
  std::stringstream ss(data);
  EXPECT_THROW(core::PipelineIo::load(ss), SerializationError);
}

TEST(QuantBlockCorruption, FutureVersionRejected) {
  std::string data = serialized_quant_pipeline().bytes;
  const size_t version_offset = 4 + std::string("salnov-pipeline").size();
  data[version_offset] = 4;
  std::stringstream ss(data);
  EXPECT_THROW(core::PipelineIo::load(ss), SerializationError);
}

TEST(QuantLegacyFormat, LegacyV2WriteRoundTripsWithFloatLadderOnly) {
  // A v2 write must stay loadable by this build (and by older builds that
  // predate quantization): float calibrations intact, q8 state absent.
  Rng rng(9);
  nn::Sequential steering = driving::build_pilotnet(driving::PilotNetConfig::tiny(16, 20), rng);
  core::NoveltyDetectorConfig config;
  config.height = 16;
  config.width = 20;
  config.preprocessing = core::Preprocessing::kVbp;
  config.score = core::ReconstructionScore::kSsim;
  config.autoencoder = core::AutoencoderConfig::tiny(16, 20);
  config.train_epochs = 2;
  core::NoveltyDetector detector(config);
  detector.attach_steering_model(&steering);
  std::vector<Image> images;
  for (int i = 0; i < 6; ++i) images.emplace_back(16, 20, rng.uniform_tensor({320}, 0.0, 1.0));
  detector.fit(images, rng);
  ASSERT_TRUE(detector.has_quant_calibrations());

  std::stringstream legacy;
  core::PipelineIo::save(legacy, detector, &steering, core::PipelineIo::kLegacyVersion);
  core::LoadedPipeline loaded = core::PipelineIo::load(legacy);
  EXPECT_FALSE(loaded.detector->has_quant_calibrations());
  EXPECT_EQ(nullptr, loaded.detector->quant_autoencoder());
  EXPECT_EQ(nullptr, loaded.detector->quant_steering());

  // The float ladder still serves: same scores as the original detector.
  Rng probe_rng(17);
  const Image probe(16, 20, probe_rng.uniform_tensor({320}, 0.0, 1.0));
  EXPECT_EQ(detector.score(probe), loaded.detector->score(probe));
}

TEST(QuantLegacyFormat, CurrentWriteRoundTripsQuantizedScoresBitExactly) {
  // v3 round-trip: the reloaded quantized rung must score bit-identically —
  // scales travel exactly (f32 in, f32 out), weights quantize from the same
  // reloaded floats.
  std::stringstream ss(serialized_quant_pipeline().bytes);
  core::LoadedPipeline loaded = core::PipelineIo::load(ss);
  ASSERT_TRUE(loaded.detector->has_quant_calibrations());
  ASSERT_NE(nullptr, loaded.detector->quant_autoencoder());
  ASSERT_NE(nullptr, loaded.detector->quant_steering());

  std::stringstream again;
  core::PipelineIo::save(again, *loaded.detector, loaded.steering_model.get());
  core::LoadedPipeline second = core::PipelineIo::load(again);
  Rng probe_rng(18);
  const Image probe(16, 20, probe_rng.uniform_tensor({320}, 0.0, 1.0));
  EXPECT_EQ(loaded.detector->score_variant(core::DetectorVariant::kPrimaryQ8, probe),
            second.detector->score_variant(core::DetectorVariant::kPrimaryQ8, probe));
}

TEST(PipelineCorruption, UnknownPreprocessingTagRejected) {
  std::string data = serialized_pipeline();
  // Config layout after header("salnov-pipeline", v1): i64 height, i64
  // width, u32 preprocessing tag.
  const size_t offset = (4 + std::string("salnov-pipeline").size() + 4) + 8 + 8;
  data[offset] = 17;
  std::stringstream ss(data);
  EXPECT_THROW(core::PipelineIo::load(ss), SerializationError);
}

TEST(PipelineCorruption, ImplausibleHiddenLayerCountRejected) {
  std::stringstream ss;
  write_header(ss, "salnov-pipeline", 1);
  write_i64(ss, 16);
  write_i64(ss, 20);
  write_u32(ss, 0);      // raw
  write_u32(ss, 0);      // mse
  write_u32(ss, 70000);  // absurd hidden layer count
  EXPECT_THROW(core::PipelineIo::load(ss), SerializationError);
}

// ---------------------------------------------------------------------------
// Online-calibration formats: P² sketch and ThresholdSet.

std::string temp_file_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string serialized_sketch(bool streaming) {
  calib::P2Sketch sketch({0.01, 0.5, 0.99}, 16);
  Rng rng(6);
  const int samples = streaming ? 200 : 10;
  for (int i = 0; i < samples; ++i) sketch.add(rng.uniform(0.0, 1.0));
  std::stringstream ss;
  sketch.save(ss);
  return ss.str();
}

std::string serialized_threshold_set() {
  calib::ThresholdSet set;
  set.epoch = 3;
  for (int v = 0; v < core::kDetectorVariantCount; ++v) {
    set.thresholds[static_cast<size_t>(v)] =
        core::NoveltyThreshold(0.5 + v, core::ScoreOrientation::kHighIsNovel);
  }
  std::stringstream ss;
  set.save(ss);
  return ss.str();
}

class SketchTruncationSweep : public ::testing::TestWithParam<int> {};

TEST_P(SketchTruncationSweep, TruncatedSketchRejected) {
  for (const bool streaming : {false, true}) {
    const std::string full = serialized_sketch(streaming);
    const size_t keep = full.size() * static_cast<size_t>(GetParam()) / 100;
    std::stringstream ss(full.substr(0, keep));
    EXPECT_THROW(calib::P2Sketch::load(ss), SerializationError)
        << (streaming ? "streaming" : "warm-up") << " sketch cut to " << keep << " bytes";
  }
}

INSTANTIATE_TEST_SUITE_P(Fractions, SketchTruncationSweep,
                         ::testing::Values(1, 5, 10, 25, 50, 75, 90, 99));

class ThresholdSetTruncationSweep : public ::testing::TestWithParam<int> {};

TEST_P(ThresholdSetTruncationSweep, TruncatedThresholdSetRejected) {
  static const std::string full = serialized_threshold_set();
  const size_t keep = full.size() * static_cast<size_t>(GetParam()) / 100;
  std::stringstream ss(full.substr(0, keep));
  EXPECT_THROW(calib::ThresholdSet::load(ss), SerializationError);
}

INSTANTIATE_TEST_SUITE_P(Fractions, ThresholdSetTruncationSweep,
                         ::testing::Values(1, 5, 10, 25, 50, 75, 90, 99));

TEST(SketchCorruption, FlippedMagicByteRejected) {
  std::string data = serialized_sketch(true);
  data[5] ^= 0x40;
  std::stringstream ss(data);
  EXPECT_THROW(calib::P2Sketch::load(ss), SerializationError);
}

TEST(SketchCorruption, NonMonotoneMarkerBankRejected) {
  // Corrupt a streaming sketch's first tracked quantile so the loaded
  // marker invariants (sorted quantiles, interior in (0,1)) break. Layout
  // after header("salnov-p2sketch", v1): u32 tracked count, then the
  // tracked quantiles as f64.
  std::string data = serialized_sketch(true);
  const size_t offset = (4 + std::string("salnov-p2sketch").size() + 4) + 4;
  const double bogus = 7.5;  // outside (0, 1)
  std::memcpy(&data[offset], &bogus, sizeof bogus);
  std::stringstream ss(data);
  EXPECT_THROW(calib::P2Sketch::load(ss), SerializationError);
}

TEST(SketchCorruption, CorruptedFileFailsCrcCheck) {
  const std::string path = temp_file_path("salnov_sketch_crc.bin");
  calib::P2Sketch sketch({0.5}, 8);
  Rng rng(7);
  for (int i = 0; i < 40; ++i) sketch.add(rng.uniform(0.0, 1.0));
  sketch.save_file(path);
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(24);
    char byte = 0;
    f.seekg(24);
    f.get(byte);
    f.seekp(24);
    f.put(static_cast<char>(byte ^ 0x01));
  }
  EXPECT_THROW(calib::P2Sketch::load_file(path), CorruptFileError);
  std::remove(path.c_str());
}

TEST(ThresholdSetCorruption, TruncatedFileReportsTruncation) {
  const std::string path = temp_file_path("salnov_thresholds_trunc.bin");
  calib::ThresholdSet set;
  set.epoch = 1;
  set.save_file(path);
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  EXPECT_THROW(calib::ThresholdSet::load_file(path), TruncatedFileError);
  std::remove(path.c_str());
}

TEST(ThresholdSetCorruption, BadOrientationTagRejected) {
  std::string data = serialized_threshold_set();
  // Layout after header("salnov-thresholds", v1): i64 epoch, then the first
  // rung's NoveltyThreshold (f64 threshold, u32 orientation tag).
  const size_t offset = (4 + std::string("salnov-thresholds").size() + 4) + 8 + 8;
  data[offset] = 9;
  std::stringstream ss(data);
  EXPECT_THROW(calib::ThresholdSet::load(ss), SerializationError);
}

// ---------------------------------------------------------------------------
// PNM robustness.

std::string temp_file(const std::string& name, const std::string& contents) {
  const std::string path = (std::filesystem::temp_directory_path() / name).string();
  std::ofstream os(path, std::ios::binary);
  os << contents;
  return path;
}

TEST(PnmCorruption, TruncatedPixelDataRejected) {
  const std::string path = temp_file("salnov_trunc.pgm", "P5\n4 4\n255\nab");
  EXPECT_THROW(read_pgm(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(PnmCorruption, NonNumericDimensionsRejected) {
  const std::string path = temp_file("salnov_dims.pgm", "P5\nxx yy\n255\n");
  EXPECT_ANY_THROW(read_pgm(path));
  std::remove(path.c_str());
}

TEST(PnmCorruption, ZeroDimensionsRejected) {
  const std::string path = temp_file("salnov_zero.pgm", "P5\n0 5\n255\n");
  EXPECT_THROW(read_pgm(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(PnmCorruption, SixteenBitDepthRejected) {
  const std::string path = temp_file("salnov_depth.pgm", "P5\n2 2\n65535\n");
  EXPECT_THROW(read_pgm(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(PnmCorruption, CommentsInHeaderAccepted) {
  std::string contents = "P5\n# a comment line\n2 1\n255\n";
  contents.push_back(static_cast<char>(10));
  contents.push_back(static_cast<char>(200));
  const std::string path = temp_file("salnov_comment.pgm", contents);
  const Image img = read_pgm(path);
  EXPECT_EQ(img.width(), 2);
  EXPECT_NEAR(img(0, 1), 200.0f / 255.0f, 1e-6f);
  std::remove(path.c_str());
}

TEST(PnmCorruption, EmptyFileRejected) {
  const std::string path = temp_file("salnov_empty.pgm", "");
  EXPECT_ANY_THROW(read_pgm(path));
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Round-trip invariants under repeated save/load cycles.

TEST(RoundTripStability, ModelSurvivesRepeatedCycles) {
  Rng rng(5);
  nn::Sequential model;
  model.emplace<nn::Dense>(4, 3, rng);
  model.emplace<nn::Tanh>();
  const Tensor probe = rng.uniform_tensor({2, 4}, -1.0, 1.0);
  const Tensor reference = model.forward(probe, nn::Mode::kInfer);

  std::string blob;
  {
    std::stringstream ss;
    nn::save_model(ss, model);
    blob = ss.str();
  }
  for (int cycle = 0; cycle < 3; ++cycle) {
    std::stringstream in(blob);
    nn::Sequential loaded = nn::load_model(in);
    std::stringstream out;
    nn::save_model(out, loaded);
    EXPECT_EQ(out.str(), blob) << "byte-stability broken at cycle " << cycle;
    EXPECT_EQ(loaded.forward(probe, nn::Mode::kInfer), reference);
    blob = out.str();
  }
}

TEST(RoundTripStability, PipelineSurvivesRepeatedCycles) {
  const std::string blob = serialized_pipeline();
  std::stringstream in(blob);
  core::LoadedPipeline first = core::PipelineIo::load(in);
  std::stringstream out;
  core::PipelineIo::save(out, *first.detector, nullptr);
  EXPECT_EQ(out.str(), blob);
}

}  // namespace
}  // namespace salnov
