// Property tests for EmpiricalCdf quantiles, aimed at the duplicate-heavy
// regime: calibrated thresholds are conservative order statistics, so they
// must be monotone in q, idempotent against cdf(), and must never flag more
// than the configured fraction of their own training set — even when the
// score distribution is mostly ties.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/threshold.hpp"
#include "metrics/ecdf.hpp"
#include "prop.hpp"

namespace salnov {
namespace {

TEST(EcdfProperty, QuantilesMonotoneInQ) {
  prop::for_all_shrink<double>(
      "upper/lower/interpolating quantiles monotone in q", prop::gen_duplicate_heavy(1, 60),
      [](const std::vector<double>& samples) {
        const EmpiricalCdf cdf(samples);
        double prev_upper = -std::numeric_limits<double>::infinity();
        double prev_lower = prev_upper;
        double prev_interp = prev_upper;
        for (double q = 0.0; q <= 1.0; q += 0.01) {
          const double upper = cdf.upper_quantile(q);
          const double lower = cdf.lower_quantile(q);
          const double interp = cdf.quantile(q);
          if (upper < prev_upper || lower < prev_lower || interp < prev_interp) return false;
          prev_upper = upper;
          prev_lower = lower;
          prev_interp = interp;
        }
        return true;
      },
      {200, 41});
}

TEST(EcdfProperty, UpperQuantileIdempotentAgainstCdf) {
  // For every sample x, upper_quantile(cdf(x)) must return x itself — the
  // property the interpolating quantile() violates on tie-heavy inputs
  // (e.g. {1, 2, 2, 3}: cdf(2) = 0.75 but quantile(0.75) = 2.25).
  prop::for_all_shrink<double>(
      "upper_quantile(cdf(x)) == x for every sample x", prop::gen_duplicate_heavy(1, 60),
      [](const std::vector<double>& samples) {
        const EmpiricalCdf cdf(samples);
        for (double x : cdf.samples()) {
          if (cdf.upper_quantile(cdf.cdf(x)) != x) return false;
        }
        return true;
      },
      {200, 42});
}

TEST(EcdfProperty, QuantilesAlwaysReturnASample) {
  prop::for_all_shrink<double>(
      "upper/lower quantiles are order statistics", prop::gen_duplicate_heavy(1, 40),
      [](const std::vector<double>& samples) {
        const EmpiricalCdf cdf(samples);
        for (double q = 0.0; q <= 1.0; q += 0.037) {
          const auto& s = cdf.samples();
          if (std::find(s.begin(), s.end(), cdf.upper_quantile(q)) == s.end()) return false;
          if (std::find(s.begin(), s.end(), cdf.lower_quantile(q)) == s.end()) return false;
        }
        return true;
      },
      {100, 43});
}

TEST(EcdfProperty, CalibrationNeverOverflagsTrainingSet) {
  // The paper's contract: a threshold at percentile p flags at most a
  // (1 - p) fraction of the very scores it was calibrated on. Checked for
  // both orientations over duplicate-heavy score vectors.
  prop::for_all_shrink<double>(
      "calibrated threshold flags <= (1 - p) of training", prop::gen_duplicate_heavy(2, 80),
      [](const std::vector<double>& scores) {
        for (const double p : {0.9, 0.95, 0.99}) {
          for (const auto orientation :
               {core::ScoreOrientation::kHighIsNovel, core::ScoreOrientation::kLowIsNovel}) {
            const core::NoveltyThreshold threshold =
                core::NoveltyThreshold::calibrate(scores, orientation, p);
            int64_t flagged = 0;
            for (double s : scores) flagged += threshold.is_novel(s) ? 1 : 0;
            const double fraction =
                static_cast<double>(flagged) / static_cast<double>(scores.size());
            if (fraction > (1.0 - p) + 1e-9) return false;
          }
        }
        return true;
      },
      {150, 44});
}

TEST(EcdfProperty, DuplicateBlockRegression) {
  // The concrete shrunk counterexample that motivated the fix: with scores
  // {0, 0, 0, 1} the interpolating 99th percentile lands at 0.97, flagging
  // the whole {1} block — 25% of the training set. The conservative
  // threshold is the top order statistic and flags nothing.
  const std::vector<double> scores = {0.0, 0.0, 0.0, 1.0};
  const core::NoveltyThreshold threshold =
      core::NoveltyThreshold::calibrate(scores, core::ScoreOrientation::kHighIsNovel, 0.99);
  EXPECT_EQ(threshold.threshold(), 1.0);
  for (double s : scores) EXPECT_FALSE(threshold.is_novel(s));
  EXPECT_TRUE(threshold.is_novel(1.5));
}

TEST(EcdfProperty, EndpointsAndErrors) {
  const EmpiricalCdf cdf({3.0, 1.0, 2.0, 2.0});
  EXPECT_EQ(cdf.upper_quantile(0.0), 1.0);
  EXPECT_EQ(cdf.upper_quantile(1.0), 3.0);
  EXPECT_EQ(cdf.lower_quantile(0.0), 1.0);
  EXPECT_EQ(cdf.lower_quantile(1.0), 3.0);

  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(cdf.quantile(nan), std::invalid_argument);
  EXPECT_THROW(cdf.upper_quantile(nan), std::invalid_argument);
  EXPECT_THROW(cdf.lower_quantile(nan), std::invalid_argument);
  EXPECT_THROW(cdf.upper_quantile(1.5), std::invalid_argument);
  EXPECT_THROW(cdf.lower_quantile(-0.5), std::invalid_argument);
}

TEST(EcdfProperty, LowerIsMirrorOfUpper) {
  prop::for_all_shrink<double>(
      "lower_quantile(q)(S) == -upper_quantile(1-q)(-S)", prop::gen_duplicate_heavy(1, 50),
      [](const std::vector<double>& samples) {
        std::vector<double> negated;
        negated.reserve(samples.size());
        for (double s : samples) negated.push_back(-s);
        const EmpiricalCdf cdf(samples);
        const EmpiricalCdf mirror(negated);
        for (double q = 0.0; q <= 1.0; q += 0.043) {
          if (cdf.lower_quantile(q) != -mirror.upper_quantile(1.0 - q)) return false;
        }
        return true;
      },
      {100, 45});
}

}  // namespace
}  // namespace salnov
