// Property-test core shared by the *_property_test and differential suites:
// seedable generators, trial driving with failure-seed echo, and
// shrinking-by-bisection for vector-shaped counterexamples.
//
// The contract: every randomized suite derives all randomness from one run
// seed. When a property is falsified, the failure message echoes the exact
// seed that regenerates the counterexample, and setting SALNOV_PROP_SEED to
// that value makes the very first trial replay it — so a red CI line is
// reproducible locally with one environment variable and no code edits.
// CI rotates the run seed per build to keep widening coverage.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

#include "tensor/rng.hpp"

namespace salnov::prop {

/// Run seed for this process: SALNOV_PROP_SEED wins (failure replay),
/// otherwise the suite's default.
inline uint64_t run_seed(uint64_t fallback = 1) {
  if (const char* env = std::getenv("SALNOV_PROP_SEED")) {
    char* end = nullptr;
    const unsigned long long value = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0') return static_cast<uint64_t>(value);
  }
  return fallback;
}

/// Seed for one trial. Trial 0 uses the run seed itself, so replaying an
/// echoed failure seed via SALNOV_PROP_SEED reproduces the counterexample
/// on the first trial. Later trials decorrelate via splitmix64.
inline uint64_t trial_seed(uint64_t run, int trial) {
  if (trial == 0) return run;
  uint64_t z = run + 0x9e3779b97f4a7c15ull * static_cast<uint64_t>(trial);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Default counterexample printer; vectors elide their middle.
template <typename T>
std::string describe(const T& value) {
  if constexpr (std::is_arithmetic_v<T>) {
    std::ostringstream os;
    os.precision(17);
    os << value;
    return os.str();
  } else {
    return "<value>";
  }
}

template <typename T>
std::string describe(const std::vector<T>& values) {
  std::ostringstream os;
  os.precision(17);
  os << "[";
  const size_t shown = values.size() <= 16 ? values.size() : 8;
  for (size_t i = 0; i < shown; ++i) os << (i ? ", " : "") << values[i];
  if (shown < values.size()) {
    os << ", ... <" << values.size() - shown - 4 << " elided> ";
    for (size_t i = values.size() - 4; i < values.size(); ++i) os << ", " << values[i];
  }
  os << "] (n=" << values.size() << ")";
  return os.str();
}

struct Options {
  int trials = 100;
  uint64_t seed = 1;  ///< suite default; SALNOV_PROP_SEED overrides
};

/// Drives `trials` generate-then-check rounds. `gen` is Rng& -> T; `holds`
/// is const T& -> bool (false = property falsified). The failure message
/// names the property, prints the counterexample, and echoes the replay
/// seed. Returns false on falsification so callers can stop early.
template <typename T, typename GenFn, typename PropFn>
bool for_all(const char* property_name, GenFn&& gen, PropFn&& holds, Options options = {}) {
  const uint64_t run = run_seed(options.seed);
  for (int trial = 0; trial < options.trials; ++trial) {
    const uint64_t seed = trial_seed(run, trial);
    Rng rng(seed);
    const T value = gen(rng);
    if (!holds(value)) {
      ADD_FAILURE() << "property '" << property_name << "' falsified (trial " << trial << "/"
                    << options.trials << ")\n  counterexample: " << describe(value)
                    << "\n  reproduce with: SALNOV_PROP_SEED=" << seed;
      return false;
    }
  }
  return true;
}

/// Shrinking by bisection (ddmin-style): repeatedly deletes contiguous
/// chunks — halves, then quarters, down to single elements — keeping any
/// deletion after which the input still fails. Returns a locally-minimal
/// failing input (`still_fails` must be true for the input passed in).
template <typename T>
std::vector<T> shrink_vector(std::vector<T> failing,
                             const std::function<bool(const std::vector<T>&)>& still_fails) {
  size_t chunk = failing.size() / 2;
  if (chunk == 0) chunk = 1;
  while (true) {
    bool removed = false;
    for (size_t start = 0; start + chunk <= failing.size();) {
      std::vector<T> candidate;
      candidate.reserve(failing.size() - chunk);
      candidate.insert(candidate.end(), failing.begin(),
                       failing.begin() + static_cast<ptrdiff_t>(start));
      candidate.insert(candidate.end(), failing.begin() + static_cast<ptrdiff_t>(start + chunk),
                       failing.end());
      if (!candidate.empty() && still_fails(candidate)) {
        failing = std::move(candidate);
        removed = true;  // retry the same start against the shorter input
      } else {
        start += chunk;
      }
    }
    if (chunk == 1) {
      if (!removed) break;
    } else {
      chunk = chunk / 2;
    }
  }
  return failing;
}

/// for_all over generated vectors with automatic shrinking: on
/// falsification the counterexample is bisection-shrunk before reporting,
/// so the failure message shows a near-minimal input.
template <typename T, typename GenFn, typename PropFn>
bool for_all_shrink(const char* property_name, GenFn&& gen, PropFn&& holds,
                    Options options = {}) {
  const uint64_t run = run_seed(options.seed);
  for (int trial = 0; trial < options.trials; ++trial) {
    const uint64_t seed = trial_seed(run, trial);
    Rng rng(seed);
    std::vector<T> value = gen(rng);
    if (!holds(value)) {
      const std::vector<T> minimal = shrink_vector<T>(
          std::move(value), [&](const std::vector<T>& candidate) { return !holds(candidate); });
      ADD_FAILURE() << "property '" << property_name << "' falsified (trial " << trial << "/"
                    << options.trials << ")\n  shrunk counterexample: " << describe(minimal)
                    << "\n  reproduce with: SALNOV_PROP_SEED=" << seed;
      return false;
    }
  }
  return true;
}

// --- stock generators -------------------------------------------------------

/// Uniform double in [lo, hi].
inline auto gen_double(double lo, double hi) {
  return [lo, hi](Rng& rng) { return rng.uniform(lo, hi); };
}

/// Vector of `elem`-generated values with size uniform in [min_size, max_size].
template <typename ElemGen>
auto gen_vector(int64_t min_size, int64_t max_size, ElemGen elem) {
  return [min_size, max_size, elem](Rng& rng) {
    const int64_t n = rng.uniform_int(min_size, max_size);
    using T = decltype(elem(rng));
    std::vector<T> values;
    values.reserve(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) values.push_back(elem(rng));
    return values;
  };
}

/// Duplicate-heavy score vectors: values drawn from a small pool so ties
/// dominate — the regime where interpolated quantiles misbehave.
inline auto gen_duplicate_heavy(int64_t min_size, int64_t max_size) {
  return [min_size, max_size](Rng& rng) {
    const int64_t n = rng.uniform_int(min_size, max_size);
    const int64_t pool = rng.uniform_int(1, 4);  // at most 4 distinct values
    std::vector<double> distinct;
    for (int64_t i = 0; i < pool; ++i) distinct.push_back(rng.uniform(0.0, 10.0));
    std::vector<double> values;
    values.reserve(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      values.push_back(distinct[static_cast<size_t>(rng.uniform_int(0, pool - 1))]);
    }
    return values;
  };
}

}  // namespace salnov::prop
