// Property-based sweeps over the scene generators: invariants that must
// hold for *every* sampled scene, driven through the shared property core
// (tests/prop.hpp) so failures echo a replayable SALNOV_PROP_SEED.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "prop.hpp"
#include "roadsim/dataset.hpp"
#include "roadsim/indoor_generator.hpp"
#include "roadsim/outdoor_generator.hpp"
#include "roadsim/rasterizer.hpp"

namespace salnov::roadsim {

/// Randomly drawn geometry case; found via ADL by prop's failure printer.
struct GeoCase {
  SceneParams params;
  int64_t h = 0;
  int64_t w = 0;
};

inline std::string describe(const GeoCase& c) {
  std::ostringstream os;
  os.precision(17);
  os << "{curvature=" << c.params.curvature << ", camera_offset=" << c.params.camera_offset
     << ", horizon_frac=" << c.params.horizon_frac
     << ", road_half_width=" << c.params.road_half_width << ", h=" << c.h << ", w=" << c.w << "}";
  return os.str();
}

namespace {

TEST(SteeringProperty, MonotoneInCurvature) {
  SceneParams params;
  double previous = -2.0;
  for (double curvature = -1.0; curvature <= 1.0; curvature += 0.1) {
    params.curvature = curvature;
    const double steer = steering_for_scene(params);
    EXPECT_GE(steer, previous);
    previous = steer;
  }
}

TEST(SteeringProperty, AntitoneInOffset) {
  SceneParams params;
  double previous = 2.0;
  for (double offset = -1.0; offset <= 1.0; offset += 0.1) {
    params.camera_offset = offset;
    const double steer = steering_for_scene(params);
    EXPECT_LE(steer, previous);
    previous = steer;
  }
}

TEST(SteeringProperty, AlwaysInUnitInterval) {
  prop::for_all<std::vector<double>>(
      "steering_for_scene in [-1, 1]",
      prop::gen_vector(2, 2, prop::gen_double(-2.0, 2.0)),
      [](const std::vector<double>& draw) {
        SceneParams params;
        params.curvature = draw[0];
        params.camera_offset = draw[1];
        const double steer = steering_for_scene(params);
        return steer >= -1.0 && steer <= 1.0;
      },
      {500, 1});
}

// ---------------------------------------------------------------------------
// Geometry invariants over a random parameter sweep.

TEST(GeometryPropertySweep, InvariantsHoldForRandomScenes) {
  const auto gen = [](Rng& rng) {
    GeoCase c;
    c.params.curvature = rng.uniform(-1.4, 1.4);
    c.params.camera_offset = rng.uniform(-1.1, 1.1);
    c.params.horizon_frac = rng.uniform(0.25, 0.65);
    c.params.road_half_width = rng.uniform(0.12, 0.5);
    c.h = 40 + rng.uniform_int(0, 60);
    c.w = 80 + rng.uniform_int(0, 200);
    return c;
  };
  const auto holds = [](const GeoCase& c) {
    const RoadGeometry geo(c.params, c.h, c.w);

    // Horizon inside the frame.
    if (geo.horizon_row() < 1 || geo.horizon_row() > c.h - 2) return false;

    // Depth is monotone in row and bounded.
    double prev_depth = -1.0;
    for (int64_t y = geo.horizon_row(); y < c.h; ++y) {
      const double d = geo.depth(y);
      if (d < prev_depth || d < 0.0 || d > 1.0) return false;
      prev_depth = d;
    }

    // Half-width grows (weakly) with depth and is positive.
    double prev_width = 0.0;
    for (int64_t y = geo.horizon_row() + 1; y < c.h; ++y) {
      const double hw = geo.half_width(y);
      if (hw <= 0.0 || hw < prev_width - 1e-9) return false;
      prev_width = hw;
    }

    // At the bottom row the road is anchored near the camera: the center
    // offset from mid-frame is bounded by half the lane width.
    const double bottom_center = geo.center_x(c.h - 1);
    if (std::abs(bottom_center - static_cast<double>(c.w) / 2.0) >
        0.55 * c.params.road_half_width * static_cast<double>(c.w) + 1.0) {
      return false;
    }

    // A pixel on the center marking must be on the road.
    for (int64_t y = geo.horizon_row() + 1; y < c.h; y += 7) {
      for (int64_t x = 0; x < c.w; x += 11) {
        if (geo.on_center_marking(y, x) && !geo.on_road(y, x)) return false;
      }
    }
    return true;
  };
  prop::for_all<GeoCase>("road geometry invariants", gen, holds, {200, 1});
}

// ---------------------------------------------------------------------------
// Generator invariants, parameterized over both generators.

enum class Which { kOutdoor, kIndoor };

class GeneratorPropertySweep : public ::testing::TestWithParam<Which> {
 protected:
  std::unique_ptr<SceneGenerator> make() const {
    if (GetParam() == Which::kOutdoor) return std::make_unique<OutdoorSceneGenerator>();
    return std::make_unique<IndoorSceneGenerator>();
  }
};

TEST_P(GeneratorPropertySweep, SamplesAreValid) {
  auto gen = make();
  Rng rng(prop::run_seed(11));
  for (int i = 0; i < 20; ++i) {
    const Sample s = gen->generate(rng);
    EXPECT_EQ(s.rgb.height(), gen->render_height());
    EXPECT_EQ(s.rgb.width(), gen->render_width());
    EXPECT_GE(s.rgb.tensor().min(), 0.0f);
    EXPECT_LE(s.rgb.tensor().max(), 1.0f);
    EXPECT_GE(s.steering, -1.0);
    EXPECT_LE(s.steering, 1.0);
    EXPECT_DOUBLE_EQ(s.steering, steering_for_scene(s.params));
  }
}

TEST_P(GeneratorPropertySweep, DeterministicPerSeed) {
  auto gen = make();
  Rng a(42), b(42);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(gen->generate(a).rgb.tensor(), gen->generate(b).rgb.tensor());
  }
}

TEST_P(GeneratorPropertySweep, RelevanceMaskIsBinaryAndBelowHorizon) {
  auto gen = make();
  Rng rng(prop::run_seed(13));
  for (int i = 0; i < 10; ++i) {
    const Sample s = gen->generate(rng);
    const Image mask = gen->relevance_mask(s.params, 60, 160);
    const RoadGeometry geo(s.params, 60, 160);
    for (int64_t y = 0; y < mask.height(); ++y) {
      for (int64_t x = 0; x < mask.width(); ++x) {
        const float v = mask(y, x);
        EXPECT_TRUE(v == 0.0f || v == 1.0f);
        if (y <= geo.horizon_row()) {
          EXPECT_EQ(v, 0.0f);
        }
      }
    }
  }
}

TEST_P(GeneratorPropertySweep, DatasetSplitIsDisjointAndComplete) {
  auto gen = make();
  Rng rng(17);
  const DrivingDataset ds = DrivingDataset::generate(*gen, 40, 30, 80, rng);
  const auto [train, test] = ds.split(0.75, rng);
  EXPECT_EQ(train.size() + test.size(), ds.size());
  // No image appears in both halves (images are distinct scenes with
  // overwhelming probability, so tensor equality identifies duplicates).
  for (int64_t i = 0; i < train.size(); ++i) {
    for (int64_t j = 0; j < test.size(); ++j) {
      EXPECT_NE(train.image(i).tensor(), test.image(j).tensor());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Both, GeneratorPropertySweep,
                         ::testing::Values(Which::kOutdoor, Which::kIndoor),
                         [](const ::testing::TestParamInfo<Which>& info) {
                           return info.param == Which::kOutdoor ? "Outdoor" : "Indoor";
                         });

// ---------------------------------------------------------------------------
// Cross-generator contrast: the datasets must be statistically different
// (that is their role), measured over a modest sample.

TEST(GeneratorContrast, GrayscaleStatisticsDiffer) {
  OutdoorSceneGenerator outdoor;
  IndoorSceneGenerator indoor;
  Rng rng(19);
  double outdoor_mean = 0.0, indoor_mean = 0.0;
  const int n = 16;
  for (int i = 0; i < n; ++i) {
    outdoor_mean += outdoor.generate(rng).rgb.to_grayscale().mean();
    indoor_mean += indoor.generate(rng).rgb.to_grayscale().mean();
  }
  EXPECT_GT(std::abs(outdoor_mean - indoor_mean) / n, 0.02);
}

TEST(GeneratorContrast, IndoorTrackNarrowerThanOutdoorRoad) {
  OutdoorSceneGenerator outdoor;
  IndoorSceneGenerator indoor;
  Rng rng(23);
  double outdoor_width = 0.0, indoor_width = 0.0;
  const int n = 16;
  for (int i = 0; i < n; ++i) {
    outdoor_width += outdoor.generate(rng).params.road_half_width;
    indoor_width += indoor.generate(rng).params.road_half_width;
  }
  EXPECT_GT(outdoor_width / n, indoor_width / n * 1.5);
}

}  // namespace
}  // namespace salnov::roadsim
