// Property-based sweeps over the scene generators: invariants that must
// hold for *every* sampled scene, checked over many random draws and over a
// parameter grid (TEST_P).
#include <gtest/gtest.h>

#include <cmath>

#include "roadsim/dataset.hpp"
#include "roadsim/indoor_generator.hpp"
#include "roadsim/outdoor_generator.hpp"
#include "roadsim/rasterizer.hpp"

namespace salnov::roadsim {
namespace {

TEST(SteeringProperty, MonotoneInCurvature) {
  SceneParams params;
  double previous = -2.0;
  for (double curvature = -1.0; curvature <= 1.0; curvature += 0.1) {
    params.curvature = curvature;
    const double steer = steering_for_scene(params);
    EXPECT_GE(steer, previous);
    previous = steer;
  }
}

TEST(SteeringProperty, AntitoneInOffset) {
  SceneParams params;
  double previous = 2.0;
  for (double offset = -1.0; offset <= 1.0; offset += 0.1) {
    params.camera_offset = offset;
    const double steer = steering_for_scene(params);
    EXPECT_LE(steer, previous);
    previous = steer;
  }
}

TEST(SteeringProperty, AlwaysInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    SceneParams params;
    params.curvature = rng.uniform(-2.0, 2.0);
    params.camera_offset = rng.uniform(-2.0, 2.0);
    const double steer = steering_for_scene(params);
    EXPECT_GE(steer, -1.0);
    EXPECT_LE(steer, 1.0);
  }
}

// ---------------------------------------------------------------------------
// Geometry invariants over a random parameter sweep.

class GeometryPropertySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeometryPropertySweep, InvariantsHoldForRandomScenes) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    SceneParams params;
    params.curvature = rng.uniform(-1.4, 1.4);
    params.camera_offset = rng.uniform(-1.1, 1.1);
    params.horizon_frac = rng.uniform(0.25, 0.65);
    params.road_half_width = rng.uniform(0.12, 0.5);
    const int64_t h = 40 + rng.uniform_int(0, 60);
    const int64_t w = 80 + rng.uniform_int(0, 200);
    const RoadGeometry geo(params, h, w);

    // Horizon inside the frame.
    EXPECT_GE(geo.horizon_row(), 1);
    EXPECT_LE(geo.horizon_row(), h - 2);

    // Depth is monotone in row and bounded.
    double prev_depth = -1.0;
    for (int64_t y = geo.horizon_row(); y < h; ++y) {
      const double d = geo.depth(y);
      EXPECT_GE(d, prev_depth);
      EXPECT_GE(d, 0.0);
      EXPECT_LE(d, 1.0);
      prev_depth = d;
    }

    // Half-width grows (weakly) with depth and is positive.
    double prev_width = 0.0;
    for (int64_t y = geo.horizon_row() + 1; y < h; ++y) {
      const double hw = geo.half_width(y);
      EXPECT_GT(hw, 0.0);
      EXPECT_GE(hw, prev_width - 1e-9);
      prev_width = hw;
    }

    // At the bottom row the road is anchored near the camera: the center
    // offset from mid-frame is bounded by half the lane width.
    const double bottom_center = geo.center_x(h - 1);
    EXPECT_LE(std::abs(bottom_center - static_cast<double>(w) / 2.0),
              0.55 * params.road_half_width * static_cast<double>(w) + 1.0);

    // Edge pixels are never road-interior pixels' complement violation:
    // a pixel on the center marking must be on the road.
    for (int64_t y = geo.horizon_row() + 1; y < h; y += 7) {
      for (int64_t x = 0; x < w; x += 11) {
        if (geo.on_center_marking(y, x)) {
          EXPECT_TRUE(geo.on_road(y, x));
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeometryPropertySweep, ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------------
// Generator invariants, parameterized over both generators.

enum class Which { kOutdoor, kIndoor };

class GeneratorPropertySweep : public ::testing::TestWithParam<Which> {
 protected:
  std::unique_ptr<SceneGenerator> make() const {
    if (GetParam() == Which::kOutdoor) return std::make_unique<OutdoorSceneGenerator>();
    return std::make_unique<IndoorSceneGenerator>();
  }
};

TEST_P(GeneratorPropertySweep, SamplesAreValid) {
  auto gen = make();
  Rng rng(11);
  for (int i = 0; i < 20; ++i) {
    const Sample s = gen->generate(rng);
    EXPECT_EQ(s.rgb.height(), gen->render_height());
    EXPECT_EQ(s.rgb.width(), gen->render_width());
    EXPECT_GE(s.rgb.tensor().min(), 0.0f);
    EXPECT_LE(s.rgb.tensor().max(), 1.0f);
    EXPECT_GE(s.steering, -1.0);
    EXPECT_LE(s.steering, 1.0);
    EXPECT_DOUBLE_EQ(s.steering, steering_for_scene(s.params));
  }
}

TEST_P(GeneratorPropertySweep, DeterministicPerSeed) {
  auto gen = make();
  Rng a(42), b(42);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(gen->generate(a).rgb.tensor(), gen->generate(b).rgb.tensor());
  }
}

TEST_P(GeneratorPropertySweep, RelevanceMaskIsBinaryAndBelowHorizon) {
  auto gen = make();
  Rng rng(13);
  for (int i = 0; i < 10; ++i) {
    const Sample s = gen->generate(rng);
    const Image mask = gen->relevance_mask(s.params, 60, 160);
    const RoadGeometry geo(s.params, 60, 160);
    for (int64_t y = 0; y < mask.height(); ++y) {
      for (int64_t x = 0; x < mask.width(); ++x) {
        const float v = mask(y, x);
        EXPECT_TRUE(v == 0.0f || v == 1.0f);
        if (y <= geo.horizon_row()) {
          EXPECT_EQ(v, 0.0f);
        }
      }
    }
  }
}

TEST_P(GeneratorPropertySweep, DatasetSplitIsDisjointAndComplete) {
  auto gen = make();
  Rng rng(17);
  const DrivingDataset ds = DrivingDataset::generate(*gen, 40, 30, 80, rng);
  const auto [train, test] = ds.split(0.75, rng);
  EXPECT_EQ(train.size() + test.size(), ds.size());
  // No image appears in both halves (images are distinct scenes with
  // overwhelming probability, so tensor equality identifies duplicates).
  for (int64_t i = 0; i < train.size(); ++i) {
    for (int64_t j = 0; j < test.size(); ++j) {
      EXPECT_NE(train.image(i).tensor(), test.image(j).tensor());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Both, GeneratorPropertySweep,
                         ::testing::Values(Which::kOutdoor, Which::kIndoor),
                         [](const ::testing::TestParamInfo<Which>& info) {
                           return info.param == Which::kOutdoor ? "Outdoor" : "Indoor";
                         });

// ---------------------------------------------------------------------------
// Cross-generator contrast: the datasets must be statistically different
// (that is their role), measured over a modest sample.

TEST(GeneratorContrast, GrayscaleStatisticsDiffer) {
  OutdoorSceneGenerator outdoor;
  IndoorSceneGenerator indoor;
  Rng rng(19);
  double outdoor_mean = 0.0, indoor_mean = 0.0;
  const int n = 16;
  for (int i = 0; i < n; ++i) {
    outdoor_mean += outdoor.generate(rng).rgb.to_grayscale().mean();
    indoor_mean += indoor.generate(rng).rgb.to_grayscale().mean();
  }
  EXPECT_GT(std::abs(outdoor_mean - indoor_mean) / n, 0.02);
}

TEST(GeneratorContrast, IndoorTrackNarrowerThanOutdoorRoad) {
  OutdoorSceneGenerator outdoor;
  IndoorSceneGenerator indoor;
  Rng rng(23);
  double outdoor_width = 0.0, indoor_width = 0.0;
  const int n = 16;
  for (int i = 0; i < n; ++i) {
    outdoor_width += outdoor.generate(rng).params.road_half_width;
    indoor_width += indoor.generate(rng).params.road_half_width;
  }
  EXPECT_GT(outdoor_width / n, indoor_width / n * 1.5);
}

}  // namespace
}  // namespace salnov::roadsim
