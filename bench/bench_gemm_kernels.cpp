// GEMM kernel sweep: scalar vs SIMD vs SIMD+packed across square sizes and
// thread counts, plus the batch-1 matvec shape the deployed detector hits
// on every dense inference. Prints a table and writes the same numbers to
// BENCH_gemm_kernels.json for CI trend tracking.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "tensor/gemm.hpp"
#include "tensor/pack.hpp"
#include "tensor/rng.hpp"
#include "tensor/tensor.hpp"

namespace {

using namespace salnov;
using Clock = std::chrono::steady_clock;

/// Times `fn` adaptively: at least 3 iterations and 0.2 s of work.
/// Returns seconds per iteration (best of the measured batches).
template <typename Fn>
double time_per_call(Fn&& fn) {
  fn();  // warm-up (page-in, lazy packs, workspace growth)
  double best = 1e300;
  int64_t iters = 1;
  double total = 0.0;
  int batches = 0;
  while (total < 0.2 || batches < 3) {
    const auto t0 = Clock::now();
    for (int64_t i = 0; i < iters; ++i) fn();
    const double dt = std::chrono::duration<double>(Clock::now() - t0).count();
    if (dt / static_cast<double>(iters) < best) best = dt / static_cast<double>(iters);
    total += dt;
    ++batches;
    if (dt < 0.02) iters *= 4;
  }
  return best;
}

struct Row {
  std::string kernel;
  int64_t m, n, k;
  int threads;
  double gflops;
};

double run_gemm(GemmKernel kernel, bool packed, int64_t m, int64_t n, int64_t k, int threads) {
  parallel::set_num_threads(threads);
  set_gemm_kernel(kernel);
  Rng rng(17);
  const Tensor a = rng.uniform_tensor({m, k}, -1.0, 1.0);
  const Tensor b = rng.uniform_tensor({k, n}, -1.0, 1.0);
  Tensor c({m, n});
  PackedMatrix pa, pb;
  const PackedMatrix* ppa = nullptr;
  const PackedMatrix* ppb = nullptr;
  if (packed) {
    pa = pack_a_panels(a.data(), m, k);
    pb = pack_b_panels(b.data(), k, n);
    ppa = &pa;
    ppb = &pb;
  }
  const double sec = time_per_call(
      [&] { gemm_ex(a.data(), b.data(), c.data(), m, n, k, GemmEpilogue{}, ppa, ppb); });
  return 2.0 * static_cast<double>(m) * static_cast<double>(n) * static_cast<double>(k) / sec / 1e9;
}

}  // namespace

int main() {
  std::printf("GEMM kernel sweep (simd backend: %s, packing %s by default)\n",
              gemm_simd_available() ? gemm_kernel_name(GemmKernel::kSimd) : "unavailable",
              gemm_weight_packing_enabled() ? "on" : "off");
  std::printf("%-12s %6s %6s %6s %8s %10s\n", "kernel", "m", "n", "k", "threads", "GFLOP/s");

  std::vector<Row> rows;
  const std::vector<int64_t> sizes = {64, 128, 256, 512};
  const std::vector<int> thread_counts = {1, 4};

  struct Variant {
    const char* name;
    GemmKernel kernel;
    bool packed;
  };
  std::vector<Variant> variants = {{"scalar", GemmKernel::kScalar, false}};
  if (gemm_simd_available()) {
    variants.push_back({"simd", GemmKernel::kSimd, false});
    variants.push_back({"simd+packed", GemmKernel::kSimd, true});
  }

  for (const Variant& v : variants) {
    for (int threads : thread_counts) {
      for (int64_t n : sizes) {
        const double gflops = run_gemm(v.kernel, v.packed, n, n, n, threads);
        rows.push_back({v.name, n, n, n, threads, gflops});
        std::printf("%-12s %6lld %6lld %6lld %8d %10.2f\n", v.name, (long long)n, (long long)n,
                    (long long)n, threads, gflops);
      }
      // The detector's hot dense-inference shape: batch-1 matvec through the
      // autoencoder's input layer (9600 -> 1200).
      const double gflops = run_gemm(v.kernel, v.packed, 1, 1200, 9600, threads);
      rows.push_back({v.name, 1, 1200, 9600, threads, gflops});
      std::printf("%-12s %6d %6d %6d %8d %10.2f\n", v.name, 1, 1200, 9600, threads, gflops);
    }
  }
  parallel::set_num_threads(0);

  std::ofstream json("BENCH_gemm_kernels.json");
  json << "{\n  \"results\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    json << "    {\"kernel\": \"" << r.kernel << "\", \"m\": " << r.m << ", \"n\": " << r.n
         << ", \"k\": " << r.k << ", \"threads\": " << r.threads << ", \"gflops\": " << r.gflops
         << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("\nwrote BENCH_gemm_kernels.json (%zu rows)\n", rows.size());
  return 0;
}
