// Shared harness for the experiment benches.
//
// Every bench binary regenerates one of the paper's figures as printed
// series (plus PGM dumps under bench_artifacts/). The environment —
// synthetic datasets and the trained steering CNN — is deterministic and
// the steering model is cached on disk, so the first bench run trains it
// once (~30 s) and later binaries load it.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/novelty_detector.hpp"
#include "driving/pilotnet.hpp"
#include "nn/sequential.hpp"
#include "roadsim/dataset.hpp"
#include "roadsim/indoor_generator.hpp"
#include "roadsim/outdoor_generator.hpp"
#include "tensor/rng.hpp"

namespace salnov::bench {

/// Paper-scale pipeline resolution.
inline constexpr int64_t kHeight = 60;
inline constexpr int64_t kWidth = 160;

/// Dataset sizes. The paper trains on 80% of ~45k Udacity images and tests
/// on 500 random samples per class; we scale the corpus to a single CPU
/// core but keep the 80/20 role split and a paper-matching test protocol.
inline constexpr int64_t kTrainImages = 400;
inline constexpr int64_t kTestImages = 200;

/// Where cached models and PGM dumps live (created on demand).
std::string artifact_dir();

struct Env {
  roadsim::OutdoorSceneGenerator outdoor;  ///< DSU-sim
  roadsim::IndoorSceneGenerator indoor;    ///< DSI-sim
  roadsim::DrivingDataset outdoor_train;   ///< DSU-sim 80% role
  roadsim::DrivingDataset outdoor_test;    ///< DSU-sim held-out samples
  roadsim::DrivingDataset indoor_test;     ///< DSI-sim novel samples
  nn::Sequential steering;                 ///< compact PilotNet trained on outdoor_train
};

/// Builds (or loads from cache) the shared environment. Deterministic:
/// every bench sees identical data and weights.
Env& environment();

/// A fitted detector plus (when loaded from cache) the steering model it
/// owns. Use via `handle.detector`.
struct DetectorHandle {
  std::unique_ptr<nn::Sequential> steering;  ///< null when borrowing env's model
  std::unique_ptr<core::NoveltyDetector> detector;
};

/// Fits a detector of the given configuration on the environment's outdoor
/// training images (fresh deterministic Rng per call), or loads the result
/// of an identical earlier fit from the artifact cache.
DetectorHandle fit_or_load_detector(Env& env, core::NoveltyDetectorConfig config, uint64_t seed);

/// Detector hyperparameters used by all figure benches (chosen so one
/// detector fits in about a minute on one core).
core::NoveltyDetectorConfig bench_detector_config(core::Preprocessing pre,
                                                  core::ReconstructionScore score);

// --- Reporting helpers -----------------------------------------------------

double mean_of(const std::vector<double>& values);

/// Prints a two-class histogram figure: shared range, `bins` rows, one
/// column of '#' bars per class, plus summary stats (mean, overlap, AUC,
/// detection rate at the given threshold when provided).
void print_score_comparison(const std::string& title, const std::string& target_name,
                            const std::vector<double>& target_scores, const std::string& novel_name,
                            const std::vector<double>& novel_scores, bool high_is_novel,
                            double threshold, int64_t bins = 24);

/// Banner for a bench binary.
void print_header(const std::string& figure, const std::string& description);

}  // namespace salnov::bench
