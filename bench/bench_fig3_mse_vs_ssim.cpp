// Figure 3: MSE and SSIM of an original road image vs (a) added Gaussian
// noise and (b) increased brightness, with both perturbations engineered to
// the same pixel-wise MSE (the paper quotes MSE 91.7 / SSIM 0.64 for noise
// and MSE 90.6 / SSIM 0.98 for brightness).
//
// The reproduced shape: at matched MSE, SSIM of the brightness-shifted
// image is far higher than SSIM of the noisy image.
#include <cstdio>

#include "common.hpp"
#include "image/image_io.hpp"
#include "image/transforms.hpp"
#include "metrics/mse.hpp"
#include "metrics/ssim.hpp"

namespace {

using namespace salnov;

void run_row(const Image& base, double target_mse, uint64_t seed, const std::string& tag) {
  Rng rng(seed);
  const double sigma = calibrate_noise_for_mse(base, target_mse, rng);
  const double delta = calibrate_brightness_for_mse(base, target_mse);
  Rng replay(seed);
  const Image noisy = add_gaussian_noise(base, sigma, replay);
  const Image brightened = adjust_brightness(base, delta);

  std::printf("%-22s %10s %10s\n", tag.c_str(), "MSE", "SSIM");
  std::printf("%-22s %10.1f %10.2f\n", "  original", mse_255(base, base), ssim(base, base));
  std::printf("%-22s %10.1f %10.2f   (sigma = %.3f)\n", "  + gaussian noise", mse_255(base, noisy),
              ssim(base, noisy), sigma);
  std::printf("%-22s %10.1f %10.2f   (delta = %.3f)\n", "  + brightness", mse_255(base, brightened),
              ssim(base, brightened), delta);

  write_pgm(bench::artifact_dir() + "/fig3_" + tag + "_original.pgm", base);
  write_pgm(bench::artifact_dir() + "/fig3_" + tag + "_noise.pgm", noisy);
  write_pgm(bench::artifact_dir() + "/fig3_" + tag + "_bright.pgm", brightened);
}

}  // namespace

int main() {
  using namespace salnov;
  bench::print_header("Figure 3 — MSE vs SSIM under engineered perturbations",
                      "Gaussian noise and brightness shift calibrated to equal pixel-wise MSE;\n"
                      "SSIM must rank the brightness change as far more similar (paper: 0.98 vs 0.64).");

  bench::Env& env = bench::environment();
  // Paper target: MSE ~91 on a real road image. Reproduce on one outdoor
  // and one indoor scene plus a sweep of MSE levels.
  run_row(env.outdoor_test.image(0), 91.0, 7, "outdoor");
  std::printf("\n");
  run_row(env.indoor_test.image(0), 91.0, 7, "indoor");

  std::printf("\nSweep: SSIM at matched MSE levels (outdoor scene)\n");
  std::printf("%10s %14s %14s %14s\n", "MSE", "SSIM(noise)", "SSIM(bright)", "gap");
  const Image& base = env.outdoor_test.image(0);
  for (double target : {20.0, 50.0, 91.0, 150.0, 250.0, 400.0}) {
    Rng rng(11);
    const double sigma = calibrate_noise_for_mse(base, target, rng);
    const double delta = calibrate_brightness_for_mse(base, target);
    Rng replay(11);
    const double s_noise = ssim(base, add_gaussian_noise(base, sigma, replay));
    const double s_bright = ssim(base, adjust_brightness(base, delta));
    std::printf("%10.1f %14.3f %14.3f %14.3f\n", target, s_noise, s_bright, s_bright - s_noise);
  }
  std::printf("\nShape check vs paper: SSIM(brightness) >> SSIM(noise) at matched MSE.\n");
  return 0;
}
