// §III-B speed claim: "VBP has been demonstrated to be [an] order of
// magnitude faster than other network saliency visualization methods (such
// as [layer-wise relevance propagation])".
//
// Times VBP, LRP, and gradient saliency on the same trained networks
// (compact and paper-size PilotNet) and reports per-image latency and the
// LRP/VBP ratio.
#include <chrono>
#include <cstdio>

#include "common.hpp"
#include "saliency/gradient_saliency.hpp"
#include "saliency/lrp.hpp"
#include "saliency/visual_backprop.hpp"

namespace {

using namespace salnov;

volatile float benchmarkish_sink = 0.0f;  // keeps forward passes from being elided

double time_per_image_us(saliency::SaliencyMethod& method, nn::Sequential& model,
                         const std::vector<Image>& images, int repeats) {
  // Warm-up pass, then best-of-`repeats` sweep over the image set.
  method.compute(model, images.front());
  double best_us = 1e300;
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    for (const Image& image : images) method.compute(model, image);
    const auto t1 = std::chrono::steady_clock::now();
    const double us =
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count() /
        static_cast<double>(images.size());
    best_us = std::min(best_us, us);
  }
  return best_us;
}

void run_model(const char* name, nn::Sequential& model, const std::vector<Image>& images) {
  saliency::VisualBackProp vbp;
  saliency::GradientSaliency gradient;
  saliency::LayerwiseRelevancePropagation lrp;

  // Every method pays for one forward pass; the interesting quantity is the
  // *saliency overhead* on top of it, which is what the paper's speed claim
  // is about.
  double forward_us = 1e300;
  for (int r = 0; r < 3; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    for (const Image& image : images) {
      Tensor out = model.forward(image.as_nchw(), nn::Mode::kInfer);
      benchmarkish_sink = benchmarkish_sink + out[0];
    }
    const auto t1 = std::chrono::steady_clock::now();
    forward_us = std::min(
        forward_us, std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count() /
                        static_cast<double>(images.size()));
  }

  const double vbp_us = time_per_image_us(vbp, model, images, 3);
  const double grad_us = time_per_image_us(gradient, model, images, 3);
  const double lrp_us = time_per_image_us(lrp, model, images, 3);
  const double vbp_over = std::max(1.0, vbp_us - forward_us);

  std::printf("\n[%s] (%lld parameters)\n", name, static_cast<long long>(model.parameter_count()));
  std::printf("  %-22s %12.0f us/image\n", "forward pass alone", forward_us);
  std::printf("  %-22s %12.0f us/image  overhead %8.0f us (1.0x)\n", "VisualBackProp", vbp_us,
              vbp_us - forward_us);
  std::printf("  %-22s %12.0f us/image  overhead %8.0f us (%.1fx VBP overhead)\n",
              "gradient saliency", grad_us, grad_us - forward_us, (grad_us - forward_us) / vbp_over);
  std::printf("  %-22s %12.0f us/image  overhead %8.0f us (%.1fx VBP overhead)\n",
              "LRP (epsilon rule)", lrp_us, lrp_us - forward_us, (lrp_us - forward_us) / vbp_over);
}

}  // namespace

int main() {
  using namespace salnov;
  bench::print_header("Saliency speed — VBP vs LRP (paper SIII-B claim)",
                      "Per-image saliency latency on trained steering networks.");

  bench::Env& env = bench::environment();
  std::vector<Image> images;
  for (int64_t i = 0; i < 10; ++i) images.push_back(env.outdoor_test.image(i));

  run_model("compact PilotNet", env.steering, images);

  // Paper-size PilotNet (24-36-48-64-64 channels): the claim should hold —
  // and widen — on the full architecture. Untrained weights are fine for a
  // pure speed measurement.
  Rng rng(3);
  nn::Sequential paper_model = driving::build_pilotnet(driving::PilotNetConfig::paper(), rng);
  run_model("paper-size PilotNet", paper_model, images);

  std::printf("\nShape check vs paper: VBP is roughly an order of magnitude faster than\n"
              "LRP on the same network (the gap grows with network width).\n");
  return 0;
}
