// Figure 6: reconstruction quality comparison — the baseline autoencoder
// (raw images + MSE loss) produces blurry reconstructions even for target
// images, while the proposed configuration (VBP images + SSIM loss)
// reconstructs target-class inputs cleanly and fails visibly on novel ones.
//
// Reports per-image similarity of reconstructions (target vs novel) for
// both configurations and dumps input/reconstruction PGM pairs.
#include <cstdio>

#include "common.hpp"
#include "image/image_io.hpp"
#include "metrics/mse.hpp"
#include "metrics/ssim.hpp"

int main() {
  using namespace salnov;
  bench::print_header("Figure 6 — reconstruction quality (baseline vs proposed)",
                      "Autoencoder reconstructions of target and novel images under both\n"
                      "configurations; similarity of reconstruction to input.");

  bench::Env& env = bench::environment();

  struct Config {
    const char* name;
    const char* tag;
    core::Preprocessing pre;
    core::ReconstructionScore score;
  };
  const Config configs[] = {
      {"original images + MSE loss", "rawmse", core::Preprocessing::kRaw,
       core::ReconstructionScore::kMse},
      {"VBP images + SSIM loss", "vbpssim", core::Preprocessing::kVbp,
       core::ReconstructionScore::kSsim},
  };

  for (const Config& config : configs) {
    bench::DetectorHandle handle =
        bench::fit_or_load_detector(env, bench::bench_detector_config(config.pre, config.score), 5);
    const core::NoveltyDetector& detector = *handle.detector;

    double target_ssim = 0.0, target_mse = 0.0, novel_ssim = 0.0, novel_mse = 0.0;
    const int64_t count = 50;
    for (int64_t i = 0; i < count; ++i) {
      const Image tp = detector.preprocess(env.outdoor_test.image(i));
      const Image tr = detector.reconstruct(tp);
      target_ssim += ssim(tr, tp);
      target_mse += mse(tr, tp);
      const Image np = detector.preprocess(env.indoor_test.image(i));
      const Image nr = detector.reconstruct(np);
      novel_ssim += ssim(nr, np);
      novel_mse += mse(nr, np);
      if (i < 3) {
        const std::string stem =
            bench::artifact_dir() + "/fig6_" + config.tag + std::to_string(i);
        write_pgm(stem + "_target_input.pgm", tp);
        write_pgm(stem + "_target_recon.pgm", tr);
        write_pgm(stem + "_novel_input.pgm", np);
        write_pgm(stem + "_novel_recon.pgm", nr);
      }
    }
    std::printf("\n[%s]\n", config.name);
    std::printf("  target-class reconstructions: mean SSIM %.3f  mean MSE %.4f\n",
                target_ssim / count, target_mse / count);
    std::printf("  novel-class reconstructions:  mean SSIM %.3f  mean MSE %.4f\n",
                novel_ssim / count, novel_mse / count);
    std::printf("  target/novel SSIM gap: %.3f\n", (target_ssim - novel_ssim) / count);
  }

  std::printf("\nInput/reconstruction pairs dumped to %s/fig6_*.pgm\n",
              bench::artifact_dir().c_str());
  std::printf("Shape check vs paper: the proposed configuration reconstructs target inputs\n"
              "better than novel inputs; the raw+MSE baseline reconstructs everything\n"
              "equally blurrily, so the gap is small or absent.\n");
  return 0;
}
