// Domain-shift severity sweep (extension; no direct paper counterpart).
//
// The paper's motivation is detecting *unfamiliar driving conditions*, not
// only a different venue. This bench grades the training environment itself
// through three condition axes — fog density, dusk severity, rain
// intensity — and reports the proposed detector's mean score, detection
// rate, and AUC (with a bootstrap 95% CI) at each severity level. The
// expected shape: scores fall monotonically with severity and the detector
// starts flagging well before the scene becomes unrecognizable.
#include <cstdio>
#include <functional>

#include "common.hpp"
#include "image/image_io.hpp"
#include "image/transforms.hpp"
#include "metrics/roc.hpp"
#include "roadsim/conditions.hpp"

int main() {
  using namespace salnov;
  bench::print_header("Domain shift & adversarial transforms — severity sweeps (extension)",
                      "Proposed detector (VBP + SSIM) scored on condition-degraded and\n"
                      "geometrically perturbed versions of its own training environment.");

  bench::Env& env = bench::environment();
  bench::DetectorHandle handle = bench::fit_or_load_detector(
      env, bench::bench_detector_config(core::Preprocessing::kVbp, core::ReconstructionScore::kSsim),
      5);
  const core::NoveltyDetector& detector = *handle.detector;

  const auto clean_scores = detector.scores(env.outdoor_test.images());
  std::printf("\nclean held-out outdoor: mean SSIM %.3f (threshold %.3f)\n",
              bench::mean_of(clean_scores), detector.threshold().threshold());

  struct Axis {
    const char* name;
    std::vector<double> levels;
    std::function<Image(const Image&, const roadsim::SceneParams&, double, Rng&)> apply;
  };
  const std::vector<Axis> axes = {
      {"fog (density)",
       {0.3, 0.8, 1.5, 3.0},
       [](const Image& f, const roadsim::SceneParams& p, double level, Rng&) {
         return roadsim::apply_fog(f, p, level);
       }},
      {"dusk (severity)",
       {0.2, 0.4, 0.6, 0.9},
       [](const Image& f, const roadsim::SceneParams&, double level, Rng&) {
         return roadsim::apply_dusk(f, level);
       }},
      {"rain (streaks)",
       {10, 30, 80, 200},
       [](const Image& f, const roadsim::SceneParams&, double level, Rng& rng) {
         return roadsim::apply_rain(f, static_cast<int64_t>(level), rng);
       }},
      // The paper's SII also demands robustness to "slightly modified"
      // adversarial transforms, citing Engstrom et al.'s rotations and
      // translations — include both as severity axes.
      {"rotation (deg)",
       {2, 5, 10, 20},
       [](const Image& f, const roadsim::SceneParams&, double level, Rng&) {
         return rotate(f, level);
       }},
      {"translation (px)",
       {2, 4, 8, 16},
       [](const Image& f, const roadsim::SceneParams&, double level, Rng&) {
         const auto px = static_cast<int64_t>(level);
         return translate(f, px / 2, px);
       }},
  };

  std::printf("\n%-18s %8s %12s %12s %10s %18s\n", "condition", "level", "mean SSIM", "flagged",
              "AUC", "AUC 95%% CI");
  for (const Axis& axis : axes) {
    bool dumped = false;
    for (double level : axis.levels) {
      Rng rng(404);
      std::vector<Image> shifted;
      shifted.reserve(env.outdoor_test.size());
      for (int64_t i = 0; i < env.outdoor_test.size(); ++i) {
        shifted.push_back(
            axis.apply(env.outdoor_test.image(i), env.outdoor_test.params(i), level, rng));
      }
      const auto scores = detector.scores(shifted);
      int64_t flagged = 0;
      for (double s : scores) flagged += detector.threshold().is_novel(s) ? 1 : 0;
      // SSIM orientation: novel = low, so feed negated scores into the
      // high-is-positive bootstrap machinery.
      auto negate = [](std::vector<double> v) {
        for (double& s : v) s = -s;
        return v;
      };
      Rng boot(505);
      const ConfidenceInterval ci =
          bootstrap_auc_ci(negate(scores), negate(clean_scores), boot, 400, 0.95);
      std::printf("%-18s %8.2f %12.3f %10.1f%% %10.3f    [%.3f, %.3f]\n", axis.name, level,
                  bench::mean_of(scores),
                  100.0 * static_cast<double>(flagged) / static_cast<double>(scores.size()),
                  ci.point, ci.lower, ci.upper);
      if (!dumped) {
        write_pgm(bench::artifact_dir() + "/domain_shift_" + std::string(axis.name).substr(0, 3) +
                      ".pgm",
                  shifted.front());
        dumped = true;
      }
    }
  }

  std::printf("\nReading: novelty scores fall monotonically along every severity axis, and\n"
              "the 99th-percentile rule flags the moderate-to-severe conditions — the\n"
              "behaviour the paper's framework promises for unfamiliar conditions.\n");
  return 0;
}
