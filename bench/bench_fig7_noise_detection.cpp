// Figure 7: noise detection — the novel dataset is the *training* dataset
// with added Gaussian noise (the adversarial-perturbation scenario from the
// paper's problem statement). The noisy images are passed through VBP like
// any other input; the paper observes that
//   * MSE on VBP images cannot separate noisy from clean,
//   * SSIM on VBP images separates them,
//   * the separation is smaller than the cross-dataset separation of Fig. 5
//     (lane features survive in the noisy images),
//   * MSE on original images behaves like MSE on VBP images (in-text note).
#include <cstdio>

#include "common.hpp"
#include "image/transforms.hpp"
#include "metrics/roc.hpp"

int main() {
  using namespace salnov;
  bench::print_header("Figure 7 — detecting Gaussian-noise perturbations of the training domain",
                      "Clean held-out outdoor images vs the same images with Gaussian noise,\n"
                      "scored by MSE and SSIM detectors on VBP images (plus raw-MSE control).");

  bench::Env& env = bench::environment();

  // Noise level: visible corruption (sigma = 0.1 of full scale), the same
  // order as the paper's Fig. 3 example.
  const double sigma = 0.1;
  Rng noise_rng(77);
  std::vector<Image> noisy;
  noisy.reserve(env.outdoor_test.size());
  for (int64_t i = 0; i < env.outdoor_test.size(); ++i) {
    noisy.push_back(add_gaussian_noise(env.outdoor_test.image(i), sigma, noise_rng));
  }

  struct Config {
    const char* name;
    core::Preprocessing pre;
    core::ReconstructionScore score;
  };
  const Config configs[] = {
      {"VBP images + MSE", core::Preprocessing::kVbp, core::ReconstructionScore::kMse},
      {"VBP images + SSIM", core::Preprocessing::kVbp, core::ReconstructionScore::kSsim},
      {"original images + MSE (control)", core::Preprocessing::kRaw,
       core::ReconstructionScore::kMse},
  };

  std::printf("noise: i.i.d. Gaussian, sigma = %.2f of full intensity scale\n", sigma);
  for (const Config& config : configs) {
    bench::DetectorHandle handle =
        bench::fit_or_load_detector(env, bench::bench_detector_config(config.pre, config.score), 5);
    const core::NoveltyDetector& detector = *handle.detector;

    const auto clean_scores = detector.scores(env.outdoor_test.images());
    const auto noisy_scores = detector.scores(noisy);
    const bool high_is_novel = config.score == core::ReconstructionScore::kMse;
    bench::print_score_comparison(std::string("[") + config.name + "]", "clean", clean_scores,
                                  "noisy", noisy_scores, high_is_novel,
                                  detector.threshold().threshold());
  }

  // Sweep over noise strength: the paper argues SSIM's advantage is in
  // "differentiating finer grain detail", so compare detector AUCs as the
  // corruption gets subtler.
  std::printf("\nAUC vs noise level (novel = noisy training-domain images)\n");
  std::printf("%8s %14s %14s %14s\n", "sigma", "raw+MSE", "VBP+MSE", "VBP+SSIM");
  bench::DetectorHandle raw_mse = bench::fit_or_load_detector(
      env, bench::bench_detector_config(core::Preprocessing::kRaw, core::ReconstructionScore::kMse),
      5);
  bench::DetectorHandle vbp_mse = bench::fit_or_load_detector(
      env, bench::bench_detector_config(core::Preprocessing::kVbp, core::ReconstructionScore::kMse),
      5);
  bench::DetectorHandle vbp_ssim = bench::fit_or_load_detector(
      env, bench::bench_detector_config(core::Preprocessing::kVbp, core::ReconstructionScore::kSsim),
      5);
  for (double level : {0.02, 0.05, 0.10, 0.20}) {
    Rng sweep_rng(101);
    std::vector<Image> corrupted;
    for (int64_t i = 0; i < env.outdoor_test.size(); ++i) {
      corrupted.push_back(add_gaussian_noise(env.outdoor_test.image(i), level, sweep_rng));
    }
    const auto auc_for = [&](const core::NoveltyDetector& detector) {
      const auto clean = detector.scores(env.outdoor_test.images());
      const auto dirty = detector.scores(corrupted);
      return detector.config().score == core::ReconstructionScore::kMse
                 ? auc_high_is_positive(dirty, clean)
                 : auc_low_is_positive(dirty, clean);
    };
    std::printf("%8.2f %14.3f %14.3f %14.3f\n", level, auc_for(*raw_mse.detector),
                auc_for(*vbp_mse.detector), auc_for(*vbp_ssim.detector));
  }

  std::printf("\nShape check vs paper: SSIM separates noisy from clean while the MSE\n"
              "detectors cannot; the separation is smaller than Fig. 5's cross-dataset\n"
              "separation because lane features survive the noise.\n");
  return 0;
}
