// Multi-stream micro-batching scaling: the ServingCluster's headline claim.
//
// Scoring one frame is a batch-1 matvec against the autoencoder weights —
// memory-bound, so independent per-stream Supervisors leave most of the
// core's FLOPs idle. The cluster gathers frames across streams into batch-B
// GEMMs that reuse each loaded weight panel B times. This bench measures
// that recovery on a capacity-scaled autoencoder (see run() for why):
//
//   baseline:  N independent single-stream Supervisors, driven round-robin
//              (exactly what N separate serving processes would do);
//   cluster:   the same N streams through a ServingCluster, swept over
//              replicas x max_batch.
//
// Before timing anything it drives identical frame schedules through both
// paths and hard-asserts every score/verdict/mode is bit-identical — the
// batching contract the cluster is built on. Emits BENCH_cluster.json with
// aggregate frames/s, speedup vs baseline, and per-stream score-stage p99.
//
// Usage: bench_cluster_scaling [--quick] [--frames N]
//   --quick    reduced grid + frame count for CI smoke (no speedup gate)
//   --frames   frames per stream for the timing runs (default 256)
//
// The full run fails (exit 1) if the best 16-stream configuration does not
// reach 4x the 16-supervisor baseline, or if any bit-identity check fails.
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common.hpp"
#include "serving/cluster.hpp"
#include "serving/supervisor.hpp"

namespace salnov::bench {
namespace {

constexpr uint64_t kDetectorSeed = 19;

double elapsed_ms(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

int check(bool ok, const char* what) {
  if (!ok) std::fprintf(stderr, "CLUSTER BENCH FAILURE: %s\n", what);
  return ok ? 0 : 1;
}

/// Latency rings only, no degradation: the sweep measures steady-state
/// throughput, not ladder policy.
serving::SupervisorConfig open_budgets() {
  serving::SupervisorConfig config;
  config.stage_budget_ns.fill(0);
  config.frame_budget_ns = 0;
  return config;
}

/// Stream s's frame i — the same indexing for baseline and cluster, so the
/// two paths see identical schedules.
const Image& frame_for(const std::vector<Image>& pool, int64_t stream, int64_t i) {
  return pool[static_cast<size_t>((stream * 31 + i) % static_cast<int64_t>(pool.size()))];
}

struct TimedRun {
  int64_t streams = 0;
  int64_t replicas = 0;
  int64_t max_batch = 0;
  double ms = 0.0;
  double fps = 0.0;
  double speedup = 0.0;
  int64_t score_p99_max_ns = 0;  ///< worst per-stream score-stage p99
};

/// Round-robin through N independent supervisors on the driving thread —
/// the no-batching reference.
double baseline_ms(const core::NoveltyDetector& detector, int64_t streams,
                   int64_t frames_per_stream, const std::vector<Image>& pool) {
  std::vector<std::unique_ptr<serving::Supervisor>> sups;
  for (int64_t s = 0; s < streams; ++s) {
    sups.push_back(
        std::make_unique<serving::Supervisor>(detector, nullptr, open_budgets(), nullptr));
  }
  const auto start = std::chrono::steady_clock::now();
  for (int64_t i = 0; i < frames_per_stream; ++i) {
    for (int64_t s = 0; s < streams; ++s) {
      sups[static_cast<size_t>(s)]->process(frame_for(pool, s, i));
    }
  }
  return elapsed_ms(start);
}

/// Stages the whole schedule while paused, then times resume -> drain: pure
/// batched processing, no producer overhead in the measurement.
TimedRun cluster_run(const core::NoveltyDetector& detector, int64_t streams, int64_t replicas,
                     int64_t max_batch, int64_t frames_per_stream,
                     const std::vector<Image>& pool) {
  serving::ClusterConfig config;
  config.streams = streams;
  config.replicas = replicas;
  config.max_batch = max_batch;
  config.gather_window_ns = 1'000'000'000;  // seals are max_batch/flush-driven
  config.supervisor = open_budgets();
  config.keep_results = false;
  serving::ServingCluster cluster(detector, nullptr, config, nullptr);

  cluster.pause();
  for (int64_t i = 0; i < frames_per_stream; ++i) {
    for (int64_t s = 0; s < streams; ++s) cluster.submit(s, frame_for(pool, s, i));
  }
  const auto start = std::chrono::steady_clock::now();
  cluster.resume();
  cluster.drain();
  TimedRun run;
  run.ms = elapsed_ms(start);
  run.streams = streams;
  run.replicas = replicas;
  run.max_batch = max_batch;
  run.fps = 1000.0 * static_cast<double>(streams * frames_per_stream) / run.ms;
  for (int64_t s = 0; s < streams; ++s) {
    const serving::HealthSnapshot health = cluster.stream_health(s);
    const int64_t p99 = health.stages[static_cast<size_t>(serving::Stage::kScore)].p99_ns;
    if (p99 > run.score_p99_max_ns) run.score_p99_max_ns = p99;
  }
  cluster.stop();
  return run;
}

/// Drives the same schedule through solo supervisors and a batching cluster
/// and demands bit-identical outputs, frame by frame, stream by stream.
int verify_bit_identity(const core::NoveltyDetector& detector, int64_t streams,
                        int64_t frames_per_stream, const std::vector<Image>& pool) {
  std::vector<std::vector<serving::ServeResult>> solo(static_cast<size_t>(streams));
  for (int64_t s = 0; s < streams; ++s) {
    serving::Supervisor sup(detector, nullptr, open_budgets(), nullptr);
    for (int64_t i = 0; i < frames_per_stream; ++i) {
      solo[static_cast<size_t>(s)].push_back(sup.process(frame_for(pool, s, i)));
    }
  }

  serving::ClusterConfig config;
  config.streams = streams;
  config.replicas = 2;
  config.max_batch = 16;
  config.gather_window_ns = 1'000'000'000;
  config.supervisor = open_budgets();
  serving::ServingCluster cluster(detector, nullptr, config, nullptr);
  cluster.pause();
  for (int64_t i = 0; i < frames_per_stream; ++i) {
    for (int64_t s = 0; s < streams; ++s) cluster.submit(s, frame_for(pool, s, i));
  }
  cluster.drain();
  const std::vector<serving::ClusterResult> results = cluster.take_results();
  cluster.stop();

  int failures = 0;
  failures += check(static_cast<int64_t>(results.size()) == streams * frames_per_stream,
                    "cluster returned every frame");
  std::vector<int64_t> next(static_cast<size_t>(streams), 0);
  for (const serving::ClusterResult& r : results) {
    const auto& expect = solo[static_cast<size_t>(r.stream_id)]
                             [static_cast<size_t>(next[static_cast<size_t>(r.stream_id)]++)];
    const bool score_equal = (std::isnan(expect.score) && std::isnan(r.result.score)) ||
                             expect.score == r.result.score;
    if (!score_equal || expect.novel != r.result.novel || expect.scored != r.result.scored ||
        expect.mode != r.result.mode || expect.monitor_state != r.result.monitor_state) {
      std::fprintf(stderr,
                   "CLUSTER BENCH FAILURE: stream %" PRId64 " frame %" PRId64
                   " diverged from the batch-1 path (score %.17g vs %.17g)\n",
                   r.stream_id, next[static_cast<size_t>(r.stream_id)] - 1, r.result.score,
                   expect.score);
      ++failures;
    }
  }
  const serving::ClusterStats stats = cluster.stats();
  failures += check(stats.batches < stats.batched_frames, "frames were actually batched");
  return failures;
}

}  // namespace

int run(bool quick, int64_t frames_per_stream) {
  print_header("Cluster scaling",
               "Multi-stream ServingCluster vs N independent Supervisors: cross-frame\n"
               "micro-batching turns batch-1 matvecs into batch-B GEMMs. Scores are\n"
               "hard-asserted bit-identical to the batch-1 path before timing.");

  Env& env = environment();
  // raw+MSE: the reconstruct GEMM dominates and no steering model is needed,
  // so the measured recovery is the batching itself, not saliency plumbing.
  //
  // The autoencoder is capacity-scaled (9600-1024-16-1024-9600, ~78 MB of
  // weights) rather than the paper's 64-16-64. Batching recovers weight-load
  // bandwidth: a batch-1 matvec streams every weight panel from DRAM once per
  // frame, while batch-B reuses each loaded panel B times. At the paper's
  // ~2.4 MB the per-frame work batching cannot amortize (the unfused
  // scalar-exp sigmoid output layer, the ascending-order MSE chain, the
  // supervisor policy — all frozen for bit-exactness) caps recovery near
  // 2.5x on one core; scaling capacity until weights dominate puts the bench
  // in the regime the claim is about, where real perception backbones live.
  // Epochs are short — this is a throughput bench, convergence is irrelevant.
  core::NoveltyDetectorConfig config =
      bench_detector_config(core::Preprocessing::kRaw, core::ReconstructionScore::kMse);
  config.autoencoder.hidden_units = {1024, 16, 1024};
  config.train_epochs = 12;
  DetectorHandle handle = fit_or_load_detector(env, config, kDetectorSeed);
  const core::NoveltyDetector& detector = *handle.detector;
  const std::vector<Image>& pool = env.outdoor_test.images();

  std::printf("\nverifying batch-B bit-identity against the batch-1 path...\n");
  int failures = verify_bit_identity(detector, quick ? 4 : 16, quick ? 16 : 32, pool);
  if (failures > 0) {
    std::fprintf(stderr, "%d bit-identity violation(s); not timing a broken batcher\n", failures);
    return 1;
  }
  std::printf("  ok: batched scores, verdicts, and modes match solo supervisors exactly\n");

  struct GridPoint {
    int64_t streams, replicas, max_batch;
  };
  std::vector<GridPoint> grid;
  if (quick) {
    grid = {{4, 1, 4}, {16, 2, 16}};
  } else {
    grid = {{1, 1, 1},  {4, 1, 4},   {4, 2, 4},   {16, 1, 1},  {16, 1, 8},
            {16, 1, 16}, {16, 2, 16}, {16, 4, 16}, {16, 2, 32}, {16, 4, 32}};
  }

  // One baseline per distinct stream count.
  std::vector<int64_t> stream_counts;
  for (const GridPoint& g : grid) {
    bool seen = false;
    for (int64_t c : stream_counts) seen = seen || c == g.streams;
    if (!seen) stream_counts.push_back(g.streams);
  }
  std::printf("\nbaselines (independent supervisors, %" PRId64 " frames/stream):\n",
              frames_per_stream);
  std::vector<double> baseline_fps(stream_counts.size());
  for (size_t i = 0; i < stream_counts.size(); ++i) {
    const double ms = baseline_ms(detector, stream_counts[i], frames_per_stream, pool);
    baseline_fps[i] =
        1000.0 * static_cast<double>(stream_counts[i] * frames_per_stream) / ms;
    std::printf("  %2" PRId64 " streams: %8.1f ms  %8.1f frames/s\n", stream_counts[i], ms,
                baseline_fps[i]);
  }
  const auto baseline_for = [&](int64_t streams) {
    for (size_t i = 0; i < stream_counts.size(); ++i) {
      if (stream_counts[i] == streams) return baseline_fps[i];
    }
    return 0.0;
  };

  std::printf("\ncluster sweep:\n");
  std::printf("  %7s %8s %9s %10s %12s %9s %14s\n", "streams", "replicas", "max_batch",
              "elapsed_ms", "frames_per_s", "speedup", "score_p99_us");
  std::vector<TimedRun> runs;
  double best16 = 0.0;
  for (const GridPoint& g : grid) {
    TimedRun run =
        cluster_run(detector, g.streams, g.replicas, g.max_batch, frames_per_stream, pool);
    run.speedup = run.fps / baseline_for(g.streams);
    if (g.streams == 16 && run.speedup > best16) best16 = run.speedup;
    std::printf("  %7" PRId64 " %8" PRId64 " %9" PRId64 " %10.1f %12.1f %8.2fx %14.1f\n",
                run.streams, run.replicas, run.max_batch, run.ms, run.fps, run.speedup,
                static_cast<double>(run.score_p99_max_ns) / 1000.0);
    runs.push_back(run);
  }

  std::ofstream json("BENCH_cluster.json");
  json << "{\n  \"frames_per_stream\": " << frames_per_stream << ",\n  \"quick\": "
       << (quick ? "true" : "false") << ",\n  \"baselines\": [";
  for (size_t i = 0; i < stream_counts.size(); ++i) {
    json << (i ? ", " : "") << "{\"streams\": " << stream_counts[i]
         << ", \"frames_per_s\": " << baseline_fps[i] << "}";
  }
  json << "],\n  \"runs\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    const TimedRun& r = runs[i];
    json << "    {\"streams\": " << r.streams << ", \"replicas\": " << r.replicas
         << ", \"max_batch\": " << r.max_batch << ", \"elapsed_ms\": " << r.ms
         << ", \"frames_per_s\": " << r.fps << ", \"speedup\": " << r.speedup
         << ", \"score_p99_max_ns\": " << r.score_p99_max_ns << "}"
         << (i + 1 < runs.size() ? ",\n" : "\n");
  }
  json << "  ],\n  \"best_speedup_at_16_streams\": " << best16 << "\n}\n";
  std::printf("\nwrote BENCH_cluster.json (best 16-stream speedup %.2fx)\n", best16);

  if (!quick) {
    failures += check(best16 >= 4.0, "16-stream batched throughput reaches 4x the baseline");
  }
  if (failures > 0) return 1;
  std::printf("all cluster bench invariants held\n");
  return 0;
}

}  // namespace salnov::bench

int main(int argc, char** argv) {
  bool quick = false;
  int64_t frames = 256;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
      if (frames == 256) frames = 64;
    } else if (std::strcmp(argv[i], "--frames") == 0 && i + 1 < argc) {
      frames = std::atoll(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: bench_cluster_scaling [--quick] [--frames N]\n");
      return 2;
    }
  }
  if (frames < 8) {
    std::fprintf(stderr, "bench_cluster_scaling: --frames must be >= 8\n");
    return 2;
  }
  return salnov::bench::run(quick, frames);
}
