// Figure 4: example VBP outputs for both datasets — input image, VBP mask,
// and mask overlaid on the input ("reasonable activations as a human driver
// would expect").
//
// Dumps PGM triptychs for several scenes of each dataset and prints
// quantitative alignment statistics of mask vs road geometry.
#include <cstdio>

#include "common.hpp"
#include "image/image_io.hpp"
#include "roadsim/rasterizer.hpp"
#include "saliency/visual_backprop.hpp"

namespace {

using namespace salnov;

Image overlay(const Image& input, const Image& mask) {
  Image out(input.height(), input.width());
  for (int64_t i = 0; i < out.numel(); ++i) {
    out.tensor()[i] = 0.45f * input.tensor()[i] + 0.55f * mask.tensor()[i];
  }
  return out;
}

}  // namespace

int main() {
  using namespace salnov;
  bench::print_header("Figure 4 — example VBP outputs for both datasets",
                      "Input / VBP mask / overlay dumps plus mask-vs-road alignment statistics.");

  bench::Env& env = bench::environment();
  saliency::VisualBackProp vbp;

  struct DatasetCase {
    const char* tag;
    const roadsim::DrivingDataset* data;
    const roadsim::SceneGenerator* generator;
  };
  const DatasetCase cases[] = {
      {"outdoor", &env.outdoor_test, &env.outdoor},
      {"indoor", &env.indoor_test, &env.indoor},
  };

  for (const DatasetCase& c : cases) {
    double road_topk = 0.0, edge_energy = 0.0, edge_area = 0.0;
    const int64_t count = 25;
    for (int64_t i = 0; i < count; ++i) {
      const Image& input = c.data->image(i);
      const Image mask = vbp.compute(env.steering, input);
      const Image edges = saliency::dilate(
          c.generator->relevance_mask(c.data->params(i), bench::kHeight, bench::kWidth), 1);
      const roadsim::RoadGeometry geo(c.data->params(i), bench::kHeight, bench::kWidth);
      Image road(bench::kHeight, bench::kWidth);
      for (int64_t y = geo.horizon_row() + 1; y < bench::kHeight; ++y) {
        for (int64_t x = 0; x < bench::kWidth; ++x) {
          if (geo.on_road(y, x) || geo.on_edge(y, x)) road(y, x) = 1.0f;
        }
      }
      road_topk += saliency::topk_precision(mask, road, 0.10);
      edge_energy += saliency::mask_energy_fraction(mask, edges);
      edge_area += edges.mean();
      if (i < 4) {
        const std::string stem =
            bench::artifact_dir() + "/fig4_" + c.tag + std::to_string(i);
        write_pgm(stem + "_input.pgm", input);
        write_pgm(stem + "_mask.pgm", mask);
        write_pgm(stem + "_overlay.pgm", overlay(input, mask));
      }
    }
    std::printf("%-8s (mean over %lld scenes): road top-10%% precision %.3f | "
                "edge energy %.3f (edge area %.3f)\n",
                c.tag, static_cast<long long>(count), road_topk / count, edge_energy / count,
                edge_area / count);
  }
  std::printf("\nTriptychs dumped to %s/fig4_*.pgm\n", bench::artifact_dir().c_str());
  std::printf("Shape check vs paper: masks highlight road geometry on the training-domain\n"
              "data the steering model was trained on (outdoor), as in the paper's Fig. 4.\n");
  return 0;
}
