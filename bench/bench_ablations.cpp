// Ablations over the design choices DESIGN.md calls out:
//   (a) autoencoder bottleneck width,
//   (b) SSIM window size (loss + score),
//   (c) novelty-threshold percentile (the paper fixes 0.99),
// measured by dataset-separation AUC / detection rates on a reduced-scale
// pipeline (30 x 80) so the whole sweep runs in a couple of minutes.
#include <cstdio>

#include "common.hpp"
#include "driving/steering_trainer.hpp"
#include "metrics/roc.hpp"

namespace {

using namespace salnov;

constexpr int64_t kH = 30;
constexpr int64_t kW = 80;

struct SmallEnv {
  roadsim::OutdoorSceneGenerator outdoor;
  roadsim::IndoorSceneGenerator indoor;
  roadsim::DrivingDataset train, test, novel;
  nn::Sequential steering;

  SmallEnv() {
    Rng rng(31);
    train = roadsim::DrivingDataset::generate(outdoor, 300, kH, kW, rng);
    test = roadsim::DrivingDataset::generate(outdoor, 100, kH, kW, rng);
    novel = roadsim::DrivingDataset::generate(indoor, 100, kH, kW, rng);
    auto config = driving::PilotNetConfig::compact();
    config.input_height = kH;
    config.input_width = kW;
    steering = driving::build_pilotnet(config, rng);
    driving::SteeringTrainOptions options;
    options.epochs = 20;
    options.learning_rate = 2e-3;
    std::fprintf(stderr, "[ablation] training reduced-scale steering model...\n");
    driving::train_steering_model(steering, train, options, rng);
  }
};

core::NoveltyDetectorConfig base_config() {
  core::NoveltyDetectorConfig config;
  config.height = kH;
  config.width = kW;
  config.preprocessing = core::Preprocessing::kVbp;
  config.score = core::ReconstructionScore::kSsim;
  config.autoencoder.hidden_units = {64, 16, 64};
  config.train_epochs = 120;
  config.learning_rate = 3e-3;
  return config;
}

struct Result {
  double auc;
  double novel_flagged;
  double target_flagged;
};

Result evaluate(SmallEnv& env, const core::NoveltyDetectorConfig& config) {
  core::NoveltyDetector detector(config);
  detector.attach_steering_model(&env.steering);
  Rng rng(5);
  detector.fit(env.train.images(), rng);
  const auto target = detector.scores(env.test.images());
  const auto novel = detector.scores(env.novel.images());
  const bool high = config.score == core::ReconstructionScore::kMse;
  const double threshold = detector.threshold().threshold();
  const DetectionRates rates = high ? rates_at_threshold_high(novel, target, threshold)
                                    : rates_at_threshold_low(novel, target, threshold);
  return {high ? auc_high_is_positive(novel, target) : auc_low_is_positive(novel, target),
          rates.true_positive_rate, rates.false_positive_rate};
}

void print_row(const char* label, const Result& r) {
  std::printf("  %-28s AUC %.3f   novel flagged %5.1f%%   target flagged %5.1f%%\n", label, r.auc,
              100.0 * r.novel_flagged, 100.0 * r.target_flagged);
}

}  // namespace

int main() {
  using namespace salnov;
  bench::print_header("Ablations — bottleneck width, SSIM window, threshold percentile",
                      "Reduced-scale (30x80) sweeps of the framework's design choices.");
  SmallEnv env;

  std::printf("\n(a) autoencoder bottleneck width (hidden = 64-b-64; paper: b = 16)\n");
  for (int64_t bottleneck : {4, 8, 16, 32, 64}) {
    auto config = base_config();
    config.autoencoder.hidden_units = {64, bottleneck, 64};
    char label[64];
    std::snprintf(label, sizeof label, "bottleneck %lld", static_cast<long long>(bottleneck));
    print_row(label, evaluate(env, config));
  }

  std::printf("\n(b) SSIM window size (paper: 11x11)\n");
  for (int64_t window : {5, 7, 11, 15}) {
    auto config = base_config();
    // The same window parameterizes the training loss and the score.
    config.ssim.window = window;
    char label[64];
    std::snprintf(label, sizeof label, "window %lldx%lld", static_cast<long long>(window),
                  static_cast<long long>(window));
    print_row(label, evaluate(env, config));
  }

  std::printf("\n(c) threshold percentile (paper: 0.99)\n");
  for (double percentile : {0.90, 0.95, 0.99, 0.999}) {
    auto config = base_config();
    config.threshold_percentile = percentile;
    char label[64];
    std::snprintf(label, sizeof label, "percentile %.3f", percentile);
    print_row(label, evaluate(env, config));
  }

  std::printf("\n(d) saliency method for the preprocessing stage (paper picks VBP for speed)\n");
  {
    const struct {
      const char* label;
      core::Preprocessing pre;
    } methods[] = {{"VisualBackProp", core::Preprocessing::kVbp},
                   {"gradient saliency", core::Preprocessing::kGradient},
                   {"LRP (epsilon rule)", core::Preprocessing::kLrp}};
    for (const auto& method : methods) {
      auto config = base_config();
      config.preprocessing = method.pre;
      print_row(method.label, evaluate(env, config));
    }
  }

  std::printf("\n(e) loss/preprocessing matrix at this scale (cross-check of Fig. 5)\n");
  for (auto pre : {core::Preprocessing::kRaw, core::Preprocessing::kVbp}) {
    for (auto score : {core::ReconstructionScore::kMse, core::ReconstructionScore::kSsim}) {
      auto config = base_config();
      config.preprocessing = pre;
      config.score = score;
      char label[64];
      std::snprintf(label, sizeof label, "%s + %s", pre == core::Preprocessing::kVbp ? "vbp" : "raw",
                    score == core::ReconstructionScore::kSsim ? "ssim" : "mse");
      print_row(label, evaluate(env, config));
    }
  }
  return 0;
}
