// Fault-robustness matrix (extends the Fig. 7 noise experiment).
//
// The paper perturbs test frames with Gaussian noise and reports detection
// rate vs noise level. This bench generalizes that protocol to a matrix of
// realistic sensor faults (see faults/fault_injector.hpp) x severity, and
// asks: does the *guarded* pipeline — FrameValidator screening + frozen-frame
// detection + the novelty threshold — flag the faulty stream? A frame counts
// as detected when any guard fires:
//   * the validator rejects it (NaN, out-of-range, dead-constant),
//   * it repeats the previous frame bit-identically (frozen camera),
//   * the detector scores it past the calibrated novelty threshold,
//   * the score itself is non-finite.
// A clean pass over the same images reports the false-positive floor (~1% by
// construction of the 99th-percentile rule). A second table corrupts the
// *model* instead of the camera: random bit-flips in the autoencoder weights,
// where self-detection shows up as the clean stream turning "novel".
//
// Each camera-fault cell also reports recovery latency: the monitor is fed a
// clean warm-up, a burst of faulty frames, then clean frames again, and the
// column counts frames from fault-clear until the NoveltyMonitor releases
// back to kNominal (0 when the fault never engaged it).
//
// A third table covers slow distribution drift rather than abrupt faults:
// the exposure of an otherwise healthy camera ramps up and then holds, and
// the same nominal stream is served once with the frozen paper thresholds
// and once with online shadow calibration (drift-triggered hot-swap). The
// `thresholds` CSV column separates the two regimes; the frozen rows show
// the false-alarm blow-up the calibrator exists to prevent. This scenario
// is self-contained (reduced-resolution raw+MSE pipeline, no shared env)
// so `--drift-only` stays cheap enough for CI.
//
// A fourth table moves the fault from the sensor and the weights to the
// *serving replica*: each row injects one replica-fault kind (crash, hang,
// slow, weight-corruption) into a small live ServingCluster under the fake
// clock and reports how the watchdog failure domain absorbs it — quarantines,
// probes, restores, and the `failover_latency_frames` column: how many frames
// arrived cluster-wide between fault onset and the quarantine that migrated
// the victim's streams (the window in which frames could queue behind a dead
// replica before redispatch).
//
// Artifacts: bench_artifacts/fault_matrix.csv (one row per cell; the final
// failover_latency_frames column is 0 for non-replica rows).
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <thread>
#include <vector>

#include "common.hpp"
#include "core/monitor.hpp"
#include "faults/fault_injector.hpp"
#include "faults/replica_faults.hpp"
#include "image/transforms.hpp"
#include "roadsim/outdoor_generator.hpp"
#include "serving/clock.hpp"
#include "serving/cluster.hpp"
#include "serving/supervisor.hpp"

namespace salnov::bench {
namespace {

constexpr uint64_t kDetectorSeed = 5;
constexpr uint64_t kInjectorSeed = 7;

struct CellResult {
  double detection_rate = 0.0;   ///< any guard fired
  double validator_rate = 0.0;   ///< validator or frozen-frame screening
  double novelty_rate = 0.0;     ///< scored past the threshold (or non-finite)
};

/// Streams `images` through the guarded pipeline after per-frame injection
/// of (fault, severity). `severity < 0` means "no injection" (clean floor).
/// `variant` selects the scoring rung (float kPrimary or int8 kPrimaryQ8),
/// each judged against its own fitted threshold; the validator/frozen
/// screening ahead of scoring is precision-independent.
CellResult run_cell(const core::NoveltyDetector& detector, const std::vector<Image>& images,
                    faults::CameraFault fault, double severity,
                    core::DetectorVariant variant = core::DetectorVariant::kPrimary) {
  faults::FaultInjector injector(kInjectorSeed);
  const int64_t n = static_cast<int64_t>(images.size());

  // Screening pass (cheap, serial): validator verdict + frozen-frame check,
  // mirroring NoveltyMonitor::update's order.
  std::vector<Image> injected(images.size());
  std::vector<bool> screened(images.size(), false);
  std::vector<Image> scoreable;
  std::vector<size_t> scoreable_at;
  const Tensor* last_valid = nullptr;
  for (size_t i = 0; i < images.size(); ++i) {
    injected[i] = severity < 0.0 ? images[i] : injector.apply(fault, severity, images[i]);
    const core::FrameFault verdict = detector.frame_validator().check(injected[i]);
    const bool frozen =
        verdict == core::FrameFault::kNone && last_valid != nullptr && *last_valid == injected[i].tensor();
    last_valid = verdict == core::FrameFault::kNone ? &injected[i].tensor() : nullptr;
    if (verdict != core::FrameFault::kNone || frozen) {
      screened[i] = true;
    } else {
      scoreable.push_back(injected[i]);
      scoreable_at.push_back(i);
    }
  }

  // Scoring pass for the frames that survived screening (fans out across the
  // worker pool).
  std::vector<const Image*> scoreable_ptrs;
  scoreable_ptrs.reserve(scoreable.size());
  for (const Image& image : scoreable) scoreable_ptrs.push_back(&image);
  const std::vector<double> scores = detector.score_batch(variant, scoreable_ptrs);
  const core::NoveltyThreshold& threshold = detector.variant_calibration(variant).threshold;

  CellResult cell;
  int64_t detected = 0, by_validator = 0, by_novelty = 0;
  for (size_t i = 0; i < images.size(); ++i) {
    if (screened[i]) {
      ++by_validator;
      ++detected;
    }
  }
  for (double s : scores) {
    if (!std::isfinite(s) || threshold.is_novel(s)) {
      ++by_novelty;
      ++detected;
    }
  }
  cell.detection_rate = static_cast<double>(detected) / static_cast<double>(n);
  cell.validator_rate = static_cast<double>(by_validator) / static_cast<double>(n);
  cell.novelty_rate = static_cast<double>(by_novelty) / static_cast<double>(n);
  return cell;
}

/// Frames from fault-clear until the NoveltyMonitor releases to kNominal.
/// Clean warm-up, then a burst of injected frames, then clean frames counted
/// until release (capped). 0 when the fault burst never engaged the monitor.
int64_t recovery_latency(const core::NoveltyDetector& detector, const std::vector<Image>& images,
                         faults::CameraFault fault, double severity) {
  constexpr int64_t kWarmup = 6;
  constexpr int64_t kFaultFrames = 8;
  constexpr int64_t kRecoveryCap = 40;

  faults::FaultInjector injector(kInjectorSeed);
  core::NoveltyMonitor monitor(detector);
  size_t at = 0;
  const auto next_clean = [&]() -> const Image& { return images[at++ % images.size()]; };

  for (int64_t i = 0; i < kWarmup; ++i) monitor.update(next_clean());
  bool engaged = false;
  for (int64_t i = 0; i < kFaultFrames; ++i) {
    monitor.update(injector.apply(fault, severity, next_clean()));
    engaged = engaged || monitor.state() == core::MonitorState::kFallback ||
              monitor.state() == core::MonitorState::kSensorFault;
  }
  if (!engaged && monitor.state() == core::MonitorState::kNominal) return 0;
  for (int64_t i = 1; i <= kRecoveryCap; ++i) {
    monitor.update(next_clean());
    if (monitor.state() == core::MonitorState::kNominal) return i;
  }
  return kRecoveryCap;
}

// --- Drift scenario --------------------------------------------------------

constexpr int64_t kDriftHeight = 16;
constexpr int64_t kDriftWidth = 24;
constexpr int64_t kDriftCleanFrames = 200;
constexpr int64_t kDriftRampFrames = 200;
constexpr int64_t kDriftHoldFrames = 200;
constexpr int64_t kDriftTailFrames = 150;  ///< measured window at the end of the hold
constexpr double kDriftPeakSeverity = 0.45;

struct DriftOutcome {
  double tail_flag_rate = 0.0;  ///< novel-flag rate over the final hold window
  int64_t swaps = 0;
  int64_t drift_detections = 0;
  int64_t final_epoch = 0;
};

/// A small raw+MSE detector fitted on nominal outdoor frames; the drift
/// scenario exercises the calibration control loop, not image fidelity, so
/// reduced resolution keeps `--drift-only` runs in CI territory.
core::NoveltyDetector fit_drift_detector() {
  core::NoveltyDetectorConfig config;
  config.height = kDriftHeight;
  config.width = kDriftWidth;
  config.preprocessing = core::Preprocessing::kRaw;
  config.score = core::ReconstructionScore::kMse;
  config.autoencoder = core::AutoencoderConfig::tiny(kDriftHeight, kDriftWidth);
  config.train_epochs = 12;
  core::NoveltyDetector detector(config);

  roadsim::OutdoorSceneGenerator generator;
  Rng frame_rng(kDetectorSeed + 1);
  std::vector<Image> train;
  for (int i = 0; i < 32; ++i) {
    const roadsim::Sample sample = generator.generate(frame_rng);
    train.push_back(resize_bilinear(sample.rgb.to_grayscale(), kDriftHeight, kDriftWidth));
  }
  Rng fit_rng(kDetectorSeed);
  detector.fit(train, fit_rng);
  return detector;
}

/// Streams clean frames, then an exposure ramp that holds at its peak,
/// through a Supervisor. Identical frame/injector seeds per call, so the
/// frozen and hot-swapped runs see the same pixels.
DriftOutcome run_drift(const core::NoveltyDetector& detector, bool online_calibration) {
  serving::SupervisorConfig config;
  // Quiet the monitor so the measured rate isolates the threshold verdicts.
  config.monitor.trigger_frames = 1'000'000;
  if (online_calibration) {
    config.calibration.enabled = true;
    config.calibration.warmup = 64;
    config.calibration.min_samples = 128;
    config.calibration.check_every_frames = 32;
    config.calibration.trigger_checks = 3;
    config.calibration.release_checks = 4;
  }
  serving::FakeClock clock;
  serving::Supervisor supervisor(detector, nullptr, config, &clock);
  faults::FaultInjector injector(kInjectorSeed);
  roadsim::OutdoorSceneGenerator generator;
  Rng frame_rng(kInjectorSeed + 11);

  const int64_t total = kDriftCleanFrames + kDriftRampFrames + kDriftHoldFrames;
  int64_t tail_scored = 0, tail_novel = 0;
  for (int64_t i = 0; i < total; ++i) {
    const roadsim::Sample sample = generator.generate(frame_rng);
    Image frame = resize_bilinear(sample.rgb.to_grayscale(), kDriftHeight, kDriftWidth);
    if (i >= kDriftCleanFrames) {
      const double progress =
          std::min(1.0, static_cast<double>(i - kDriftCleanFrames + 1) / kDriftRampFrames);
      frame = injector.apply(faults::CameraFault::kOverExposure, kDriftPeakSeverity * progress,
                             frame);
    }
    const serving::ServeResult result = supervisor.process(frame);
    if (i >= total - kDriftTailFrames && result.scored) {
      ++tail_scored;
      if (result.novel) ++tail_novel;
    }
  }

  const serving::HealthSnapshot health = supervisor.health();
  DriftOutcome outcome;
  outcome.tail_flag_rate =
      tail_scored == 0 ? 1.0 : static_cast<double>(tail_novel) / static_cast<double>(tail_scored);
  outcome.swaps = health.threshold_swaps;
  outcome.drift_detections = health.drift_detections;
  outcome.final_epoch = health.threshold_epoch;
  return outcome;
}

void run_drift_scenario(std::ofstream& csv) {
  std::printf(
      "\nExposure drift (gain ramps over %" PRId64 " frames to severity %.2f, then holds;\n"
      "flag rate measured over the final %" PRId64 " held frames of a *nominal* scene):\n",
      kDriftRampFrames, kDriftPeakSeverity, kDriftTailFrames);

  const core::NoveltyDetector detector = fit_drift_detector();
  const DriftOutcome frozen = run_drift(detector, /*online_calibration=*/false);
  const DriftOutcome adaptive = run_drift(detector, /*online_calibration=*/true);

  std::printf("%-12s %-16s %-8s %-18s %s\n", "thresholds", "tail flag rate", "swaps",
              "drift detections", "final epoch");
  std::printf("%-12s %6.1f%%          %-8" PRId64 " %-18" PRId64 " %" PRId64 "\n", "frozen",
              100.0 * frozen.tail_flag_rate, frozen.swaps, frozen.drift_detections,
              frozen.final_epoch);
  std::printf("%-12s %6.1f%%          %-8" PRId64 " %-18" PRId64 " %" PRId64 "\n", "hot-swap",
              100.0 * adaptive.tail_flag_rate, adaptive.swaps, adaptive.drift_detections,
              adaptive.final_epoch);

  csv << "exposure-drift," << kDriftPeakSeverity << "," << frozen.tail_flag_rate << ",0,"
      << frozen.tail_flag_rate << ",0,frozen,0,float\n";
  csv << "exposure-drift," << kDriftPeakSeverity << "," << adaptive.tail_flag_rate << ",0,"
      << adaptive.tail_flag_rate << ",0,hot-swap,0,float\n";
}

// --- Precision smoke (CI-sized) --------------------------------------------

/// Float-vs-q8 detection rates on a reduced pipeline (the drift detector's
/// 16x24 raw+MSE config), so the CI `--drift-only` run still produces
/// precision rows in the CSV artifact without the paper-scale refit. Applies
/// the same mean-degradation gate as the full matrix; returns false on FAIL.
bool run_precision_smoke(std::ofstream& csv) {
  constexpr double kMaxQ8DegradationPp = 2.0;
  const core::NoveltyDetector detector = fit_drift_detector();
  if (!detector.has_quant_calibrations()) {
    std::printf("\n(precision smoke skipped: no quant calibrations)\n");
    return true;
  }

  roadsim::OutdoorSceneGenerator generator;
  Rng frame_rng(kDetectorSeed + 3);
  std::vector<Image> images;
  for (int i = 0; i < 200; ++i) {
    const roadsim::Sample sample = generator.generate(frame_rng);
    images.push_back(resize_bilinear(sample.rgb.to_grayscale(), kDriftHeight, kDriftWidth));
  }

  std::printf("\nPrecision smoke (16x24 raw+MSE pipeline, float vs int8 rung):\n");
  std::printf("%-16s %-10s %-10s %-10s %s\n", "fault", "severity", "float", "q8", "delta");
  const std::vector<faults::CameraFault> smoke_faults = {faults::CameraFault::kSaltPepper,
                                                         faults::CameraFault::kOverExposure};
  double total_degradation_pp = 0.0;
  int64_t cells = 0;
  for (faults::CameraFault fault : smoke_faults) {
    for (double severity : {0.25, 1.0}) {
      const CellResult f_cell = run_cell(detector, images, fault, severity);
      const CellResult q_cell =
          run_cell(detector, images, fault, severity, core::DetectorVariant::kPrimaryQ8);
      const double degradation_pp = 100.0 * (f_cell.detection_rate - q_cell.detection_rate);
      total_degradation_pp += degradation_pp;
      ++cells;
      std::printf("%-16s %-10.2f %8.1f%%  %8.1f%%  %+5.1fpp\n",
                  faults::camera_fault_name(fault), severity, 100.0 * f_cell.detection_rate,
                  100.0 * q_cell.detection_rate, -degradation_pp);
      csv << faults::camera_fault_name(fault) << "," << severity << "," << f_cell.detection_rate
          << "," << f_cell.validator_rate << "," << f_cell.novelty_rate << ",0,frozen,0,float\n";
      csv << faults::camera_fault_name(fault) << "," << severity << "," << q_cell.detection_rate
          << "," << q_cell.validator_rate << "," << q_cell.novelty_rate << ",0,frozen,0,q8\n";
    }
  }
  const double mean_pp = total_degradation_pp / static_cast<double>(cells);
  const bool gate_ok = mean_pp <= kMaxQ8DegradationPp;
  std::printf("Precision smoke gate: mean q8 degradation %.2fpp — limit %.1fpp: %s\n", mean_pp,
              kMaxQ8DegradationPp, gate_ok ? "PASS" : "FAIL");
  return gate_ok;
}

// --- Replica failure domain ------------------------------------------------

constexpr int64_t kRfStreams = 4;
constexpr int64_t kRfReplicas = 2;
constexpr int64_t kRfRounds = 64;
constexpr int64_t kRfPeriodNs = 1'000'000;  ///< one submit round per fake millisecond
constexpr int64_t kRfFaultStartNs = 16 * kRfPeriodNs;
constexpr int64_t kRfFaultEndNs = 32 * kRfPeriodNs;

struct ReplicaOutcome {
  int64_t submitted = 0;
  serving::ClusterStats stats;
  int64_t failover_latency_frames = -1;  ///< frames arrived fault-onset -> quarantine
  int64_t restore_latency_frames = -1;   ///< frames arrived fault-clear -> restore
};

/// Drives a live 4-stream / 2-replica cluster under the fake clock with one
/// scheduled fault on replica 0, one frame per stream per fake millisecond.
/// The driver paces itself with the serving soak's bounded-staleness guard;
/// while it withholds submits it keeps fake time flowing and ticks the
/// cluster, so quarantine/probe decisions are not starved of watchdog passes.
ReplicaOutcome run_replica_cell(const core::NoveltyDetector& detector,
                                nn::Sequential* steering, const std::vector<Image>& images,
                                const faults::ReplicaFault& fault) {
  faults::ReplicaFaultSchedule schedule;
  schedule.add(fault);

  serving::ClusterConfig config;
  config.streams = kRfStreams;
  config.replicas = kRfReplicas;
  config.max_batch = 8;
  config.gather_window_ns = 2 * kRfPeriodNs;
  config.supervisor.stage_budget_ns.fill(0);
  config.supervisor.frame_budget_ns = 0;
  config.keep_results = false;
  config.watchdog.enabled = true;
  config.watchdog.batch_deadline_ns = 2 * kRfPeriodNs;
  config.watchdog.missed_deadlines_to_quarantine = 2;
  config.watchdog.probe_backoff_ns = 4 * kRfPeriodNs;
  config.watchdog.max_probe_backoff_ns = 32 * kRfPeriodNs;
  // Periodic canaries are the only live detector for weight corruption (a
  // corrupted replica still seals and serves on time).
  config.watchdog.canary_period_ns = 4 * kRfPeriodNs;
  config.watchdog.canary_failures_to_quarantine = 1;
  config.replica_faults = &schedule;
  config.sleep_on_slow = false;  // FakeClock is shared across replicas

  serving::FakeClock clock;
  serving::ServingCluster cluster(detector, steering, config, &clock);
  ReplicaOutcome out;
  const auto caught_up = [&](int64_t due_per_stream) {
    for (int64_t s = 0; s < kRfStreams; ++s) {
      if (cluster.stream_health(s).frames_total + cluster.shed_for_stream(s) < due_per_stream) {
        return false;
      }
    }
    return true;
  };
  for (int64_t round = 0; round < kRfRounds; ++round) {
    clock.advance_ns(kRfPeriodNs);
    for (int64_t s = 0; s < kRfStreams; ++s) {
      cluster.submit(s, images[static_cast<size_t>((s * 17 + round) % images.size())]);
      ++out.submitted;
    }
    if (round < 8) continue;
    const auto wait_start = std::chrono::steady_clock::now();
    int64_t extra_ms = 0;
    const auto waited_ms = [&]() {
      return std::chrono::duration_cast<std::chrono::milliseconds>(
                 std::chrono::steady_clock::now() - wait_start)
          .count();
    };
    // One frame per stream per round: frames through round-8 must be done.
    while (!caught_up(round - 7) && waited_ms() < 5000) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      if (extra_ms < 8 && waited_ms() > 2 * (extra_ms + 1)) {
        clock.advance_ns(kRfPeriodNs);
        cluster.tick();
        ++extra_ms;
      }
    }
  }
  cluster.drain();
  out.stats = cluster.stats();
  for (const serving::ClusterEvent& event : cluster.take_events()) {
    if (event.kind == serving::ClusterEventKind::kQuarantine &&
        out.failover_latency_frames < 0 && event.at_ns >= fault.start_ns) {
      out.failover_latency_frames = (event.at_ns - fault.start_ns) / kRfPeriodNs * kRfStreams;
    }
    if (event.kind == serving::ClusterEventKind::kRestore && out.restore_latency_frames < 0 &&
        event.at_ns >= fault.end_ns) {
      out.restore_latency_frames = (event.at_ns - fault.end_ns) / kRfPeriodNs * kRfStreams;
    }
  }
  cluster.stop();
  return out;
}

void run_replica_scenario(const core::NoveltyDetector& detector, nn::Sequential* steering,
                          const std::vector<Image>& images, std::ofstream& csv) {
  std::printf(
      "\nReplica failure domain (one fault on replica 0 of a %" PRId64 "-stream / %" PRId64
      "-replica\nlive cluster, fake-clock rounds; latency columns count frames arrived\n"
      "cluster-wide from fault onset to quarantine and from fault clear to restore):\n",
      kRfStreams, kRfReplicas);
  std::printf("%-14s %-8s %-10s %-9s %-10s %-13s %-11s %s\n", "fault", "served", "quarant.",
              "restores", "failovers", "redispatched", "failover_f", "restore_f");

  struct Row {
    const char* name;
    faults::ReplicaFault fault;
  };
  const std::vector<Row> rows = {
      {"crash", {0, faults::ReplicaFaultKind::kCrash, kRfFaultStartNs, kRfFaultEndNs}},
      {"hang", {0, faults::ReplicaFaultKind::kHang, kRfFaultStartNs, kRfFaultEndNs}},
      {"slow",
       {0, faults::ReplicaFaultKind::kSlow, kRfFaultStartNs, kRfFaultEndNs,
        /*slow_penalty_ns=*/10 * kRfPeriodNs}},
      {"bit-flip",
       {0, faults::ReplicaFaultKind::kWeightCorrupt, kRfFaultStartNs, kRfFaultEndNs,
        /*slow_penalty_ns=*/0, /*weight_bits=*/64, /*seed=*/kInjectorSeed}},
  };
  for (const Row& row : rows) {
    const ReplicaOutcome out = run_replica_cell(detector, steering, images, row.fault);
    const int64_t served = out.stats.batched_frames + out.stats.fallback_frames;
    std::printf("replica-%-6s %4" PRId64 "/%-4" PRId64 " %-10" PRId64 " %-9" PRId64 " %-10" PRId64
                " %-13" PRId64 " %-11" PRId64 " %" PRId64 "\n",
                row.name, served, out.submitted, out.stats.quarantines, out.stats.restores,
                out.stats.failovers, out.stats.redispatched_frames, out.failover_latency_frames,
                out.restore_latency_frames);
    // detection_rate doubles as the served share; recovery latency column
    // carries the restore latency so the CSV schema stays uniform.
    csv << "replica-" << row.name << ",1,"
        << (static_cast<double>(served) / static_cast<double>(out.submitted)) << ",0,0,"
        << out.restore_latency_frames << ",frozen," << out.failover_latency_frames << ",float\n";
  }
}

}  // namespace

int run(bool drift_only) {
  print_header("Fault matrix (extends Fig. 7)",
               "Detection rate of the guarded VBP+SSIM pipeline per sensor-fault type x severity,\n"
               "plus a weight-corruption (bit-flip) sweep on the autoencoder and a slow exposure\n"
               "drift served with frozen vs hot-swapped thresholds.");

  if (drift_only) {
    std::ofstream csv(artifact_dir() + "/fault_matrix.csv");
    csv << "fault,severity,detection_rate,validator_rate,novelty_rate,recovery_latency_frames,"
           "thresholds,failover_latency_frames,precision\n";
    run_drift_scenario(csv);
    const bool precision_ok = run_precision_smoke(csv);
    std::printf("\nWrote %s/fault_matrix.csv (drift + precision-smoke rows)\n",
                artifact_dir().c_str());
    return precision_ok ? 0 : 1;
  }

  Env& env = environment();
  DetectorHandle handle = fit_or_load_detector(
      env, bench_detector_config(core::Preprocessing::kVbp, core::ReconstructionScore::kSsim),
      kDetectorSeed);
  const core::NoveltyDetector& detector = *handle.detector;
  const std::vector<Image>& images = env.outdoor_test.images();

  const std::vector<double> severities = {0.1, 0.25, 0.5, 1.0};
  const CellResult clean =
      run_cell(detector, images, faults::CameraFault::kFrozenFrame, /*severity=*/-1.0);
  std::printf("\nClean stream (no fault): %.1f%% flagged (false-positive floor; 99th-pct rule)\n",
              100.0 * clean.detection_rate);

  std::ofstream csv(artifact_dir() + "/fault_matrix.csv");
  csv << "fault,severity,detection_rate,validator_rate,novelty_rate,recovery_latency_frames,"
         "thresholds,failover_latency_frames,precision\n";
  csv << "none,0," << clean.detection_rate << "," << clean.validator_rate << ","
      << clean.novelty_rate << ",0,frozen,0,float\n";

  // Precision comparison: every camera-fault cell is scored twice, once by
  // the float rung and once by the int8 rung (each against its own fitted
  // threshold). The gate fails the bench if quantization costs more than
  // kMaxQ8DegradationPp detection averaged over the matrix. The mean, not
  // the worst cell, is the gated statistic: a single 200-frame cell has a
  // sampling standard error of ~2pp near p=0.9, so any individual cell can
  // legitimately wobble past 2pp while the matrix-wide cost stays near zero
  // (the worst cell is still reported for eyeballing).
  constexpr double kMaxQ8DegradationPp = 2.0;
  const bool quant = detector.has_quant_calibrations();
  if (!quant) {
    std::printf("\n(pipeline has no quant calibrations; q8 precision rows skipped)\n");
  }
  double worst_q8_degradation_pp = 0.0;
  double total_q8_degradation_pp = 0.0;
  int64_t q8_cells = 0;
  const char* worst_q8_cell = "none";

  std::printf(
      "\nDetection rate per cell (v = screened by validator/frozen guard share,\n"
      "r = frames from fault-clear to monitor release; q8 rows score the same\n"
      "frames through the int8 rung against its own threshold):\n");
  std::printf("%-22s", "fault \\ sev");
  for (double s : severities) std::printf("      %10.2f", s);
  std::printf("\n");
  for (faults::CameraFault fault : faults::all_camera_faults()) {
    std::printf("%-22s", faults::camera_fault_name(fault));
    std::vector<CellResult> float_cells;
    for (double severity : severities) {
      const CellResult cell = run_cell(detector, images, fault, severity);
      float_cells.push_back(cell);
      const int64_t recovery = recovery_latency(detector, images, fault, severity);
      std::printf("  %5.1f%% v%3.0f%% r%-2" PRId64, 100.0 * cell.detection_rate,
                  100.0 * cell.validator_rate, recovery);
      csv << faults::camera_fault_name(fault) << "," << severity << "," << cell.detection_rate
          << "," << cell.validator_rate << "," << cell.novelty_rate << "," << recovery
          << ",frozen,0,float\n";
    }
    std::printf("\n");
    if (!quant) continue;
    std::printf("%-19s q8", faults::camera_fault_name(fault));
    for (size_t i = 0; i < severities.size(); ++i) {
      const CellResult cell = run_cell(detector, images, fault, severities[i],
                                       core::DetectorVariant::kPrimaryQ8);
      const double degradation_pp =
          100.0 * (float_cells[i].detection_rate - cell.detection_rate);
      if (degradation_pp > worst_q8_degradation_pp) {
        worst_q8_degradation_pp = degradation_pp;
        worst_q8_cell = faults::camera_fault_name(fault);
      }
      total_q8_degradation_pp += degradation_pp;
      ++q8_cells;
      std::printf("  %5.1f%% %+5.1fpp    ", 100.0 * cell.detection_rate, -degradation_pp);
      csv << faults::camera_fault_name(fault) << "," << severities[i] << ","
          << cell.detection_rate << "," << cell.validator_rate << "," << cell.novelty_rate
          << ",0,frozen,0,q8\n";
    }
    std::printf("\n");
  }
  if (quant) {
    const double mean_q8_degradation_pp =
        q8_cells > 0 ? total_q8_degradation_pp / static_cast<double>(q8_cells) : 0.0;
    const bool gate_ok = mean_q8_degradation_pp <= kMaxQ8DegradationPp;
    std::printf(
        "\nPrecision gate: mean q8 detection-rate degradation %.2fpp over %" PRId64
        " cells (worst %.2fpp at %s) — limit %.1fpp mean: %s\n",
        mean_q8_degradation_pp, q8_cells, worst_q8_degradation_pp, worst_q8_cell,
        kMaxQ8DegradationPp, gate_ok ? "PASS" : "FAIL");
    if (!gate_ok) return 1;
  }

  std::printf("\nWeight corruption (random bit-flips in the autoencoder, clean input stream):\n");
  std::printf("%-12s %-18s %s\n", "bit flips", "flagged novel", "non-finite scores");
  for (int64_t flips : {int64_t{1}, int64_t{16}, int64_t{256}, int64_t{4096}}) {
    // Reload the cached pipeline so every row corrupts pristine weights.
    DetectorHandle corrupted = fit_or_load_detector(
        env, bench_detector_config(core::Preprocessing::kVbp, core::ReconstructionScore::kSsim),
        kDetectorSeed);
    Rng rng(kInjectorSeed + static_cast<uint64_t>(flips));
    faults::flip_weight_bits(corrupted.detector->autoencoder(), flips, rng);
    const std::vector<double> scores = corrupted.detector->scores(images);
    const core::NoveltyThreshold& threshold = corrupted.detector->threshold();
    int64_t novel = 0, non_finite = 0;
    for (double s : scores) {
      if (!std::isfinite(s)) {
        ++non_finite;
        ++novel;
      } else if (threshold.is_novel(s)) {
        ++novel;
      }
    }
    const double rate = static_cast<double>(novel) / static_cast<double>(scores.size());
    std::printf("%-12" PRId64 " %6.1f%%            %" PRId64 "\n", flips, 100.0 * rate, non_finite);
    csv << "weight-bit-flip," << flips << "," << rate << ",0," << rate << ",0,frozen,0,float\n";
  }

  run_replica_scenario(detector, handle.steering ? handle.steering.get() : &env.steering, images, csv);
  run_drift_scenario(csv);

  std::printf("\nWrote %s/fault_matrix.csv\n", artifact_dir().c_str());
  return 0;
}

}  // namespace salnov::bench

int main(int argc, char** argv) {
  const bool drift_only = argc > 1 && std::strcmp(argv[1], "--drift-only") == 0;
  return salnov::bench::run(drift_only);
}
