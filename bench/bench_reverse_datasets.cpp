// §IV-B-3 in-text note: "we do not present results for training on DSI and
// using DSU as novel data, but we were able to find comparable results. We
// note that DSU is a more varied dataset compared to our DSI, which means
// these results are more difficult to achieve on the less structured
// dataset."
//
// This bench runs the reverse experiment: steering model + autoencoder
// trained on the indoor dataset, outdoor data as the novel class, proposed
// configuration (VBP + SSIM).
#include <cstdio>

#include "common.hpp"
#include "driving/steering_trainer.hpp"
#include "metrics/roc.hpp"

int main() {
  using namespace salnov;
  bench::print_header("Reverse experiment — train on DSI-sim (indoor), novel = DSU-sim (outdoor)",
                      "The paper reports 'comparable results' for this direction; the forward\n"
                      "direction (Fig. 5) uses the more varied outdoor data as the target.");

  bench::Env& env = bench::environment();

  // Train an indoor steering model + detector (cached like the env's).
  Rng rng(21);
  roadsim::DrivingDataset indoor_train =
      roadsim::DrivingDataset::generate(env.indoor, bench::kTrainImages, bench::kHeight,
                                        bench::kWidth, rng);

  std::fprintf(stderr, "[reverse] training indoor steering model...\n");
  nn::Sequential steering = driving::build_pilotnet(driving::PilotNetConfig::compact(), rng);
  driving::SteeringTrainOptions options;
  options.epochs = 25;
  options.learning_rate = 2e-3;
  driving::train_steering_model(steering, indoor_train, options, rng);
  std::fprintf(stderr, "[reverse] indoor steering MAE: %.3f\n",
               driving::steering_mae(steering, env.indoor_test));

  core::NoveltyDetector detector(
      bench::bench_detector_config(core::Preprocessing::kVbp, core::ReconstructionScore::kSsim));
  detector.attach_steering_model(&steering);
  std::fprintf(stderr, "[reverse] fitting detector on indoor VBP images...\n");
  detector.fit(indoor_train.images(), rng);

  const auto target_scores = detector.scores(env.indoor_test.images());
  const auto novel_scores = detector.scores(env.outdoor_test.images());

  bench::print_score_comparison("[VBP + SSIM, trained on indoor]", "target (indoor)", target_scores,
                                "novel (outdoor)", novel_scores, /*high_is_novel=*/false,
                                detector.threshold().threshold());

  std::printf("\nShape check vs paper: the reverse direction also separates the datasets\n"
              "(the paper calls the two directions 'comparable').\n");
  return 0;
}
