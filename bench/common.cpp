#include "common.hpp"

#include <cstdio>
#include <filesystem>
#include <memory>

#include "core/pipeline_io.hpp"
#include "driving/steering_trainer.hpp"
#include "metrics/histogram.hpp"
#include "metrics/roc.hpp"
#include "nn/model_io.hpp"
#include "tensor/serialize.hpp"

namespace salnov::bench {

std::string artifact_dir() {
  static const std::string dir = [] {
    std::string d = "bench_artifacts";
    std::filesystem::create_directories(d);
    return d;
  }();
  return dir;
}

Env& environment() {
  static std::unique_ptr<Env> env = [] {
    auto e = std::make_unique<Env>();
    Rng rng(1);
    std::fprintf(stderr, "[env] generating datasets (%lld train / %lld test per class)...\n",
                 static_cast<long long>(kTrainImages), static_cast<long long>(kTestImages));
    e->outdoor_train = roadsim::DrivingDataset::generate(e->outdoor, kTrainImages, kHeight, kWidth, rng);
    e->outdoor_test = roadsim::DrivingDataset::generate(e->outdoor, kTestImages, kHeight, kWidth, rng);
    e->indoor_test = roadsim::DrivingDataset::generate(e->indoor, kTestImages, kHeight, kWidth, rng);

    const std::string model_path = artifact_dir() + "/steering_compact.model";
    bool loaded = false;
    if (std::filesystem::exists(model_path)) {
      std::fprintf(stderr, "[env] loading cached steering model from %s\n", model_path.c_str());
      try {
        e->steering = nn::load_model_file(model_path);
        loaded = true;
      } catch (const SerializationError& err) {
        std::fprintf(stderr, "[env] cached model unusable (%s); retraining\n", err.what());
      }
    }
    if (!loaded) {
      std::fprintf(stderr, "[env] training steering model (25 epochs, ~30 s on one core)...\n");
      e->steering = driving::build_pilotnet(driving::PilotNetConfig::compact(), rng);
      driving::SteeringTrainOptions options;
      options.epochs = 25;
      options.learning_rate = 2e-3;
      driving::train_steering_model(e->steering, e->outdoor_train, options, rng);
      nn::save_model_file(model_path, e->steering);
    }
    std::fprintf(stderr, "[env] steering MAE on held-out outdoor data: %.3f\n",
                 driving::steering_mae(e->steering, e->outdoor_test));
    return e;
  }();
  return *env;
}

core::NoveltyDetectorConfig bench_detector_config(core::Preprocessing pre,
                                                  core::ReconstructionScore score) {
  core::NoveltyDetectorConfig config;  // paper defaults: 60x160, 64-16-64 AE
  config.preprocessing = pre;
  config.score = score;
  // The SSIM objective converges more slowly than pixel-wise MSE on the
  // same architecture; give it a longer budget so both reach their plateau.
  config.train_epochs = score == core::ReconstructionScore::kSsim ? 150 : 60;
  config.learning_rate = 3e-3;
  return config;
}

DetectorHandle fit_or_load_detector(Env& env, core::NoveltyDetectorConfig config, uint64_t seed) {
  const bool vbp = core::uses_saliency(config.preprocessing);
  const char* pre_name = config.preprocessing == core::Preprocessing::kRaw        ? "raw"
                         : config.preprocessing == core::Preprocessing::kVbp      ? "vbp"
                         : config.preprocessing == core::Preprocessing::kGradient ? "grad"
                                                                                  : "lrp";
  // Non-default autoencoder layouts get an architecture segment so a
  // capacity-scaled fit can never collide with a paper-scale cache entry.
  std::string arch;
  if (config.autoencoder.hidden_units != core::AutoencoderConfig{}.hidden_units) {
    arch = "_h";
    for (size_t i = 0; i < config.autoencoder.hidden_units.size(); ++i) {
      if (i > 0) arch += "x";
      arch += std::to_string(config.autoencoder.hidden_units[i]);
    }
  }
  const std::string cache_path =
      artifact_dir() + "/detector_" + pre_name + "_" +
      (config.score == core::ReconstructionScore::kSsim ? "ssim" : "mse") + arch + "_" +
      std::to_string(config.train_epochs) + "ep_seed" + std::to_string(seed) + ".pipeline";

  DetectorHandle handle;
  if (std::filesystem::exists(cache_path)) {
    std::fprintf(stderr, "[fit] loading cached detector from %s\n", cache_path.c_str());
    try {
      core::LoadedPipeline loaded = core::PipelineIo::load_file(cache_path);
      if (loaded.detector->has_quant_calibrations()) {
        handle.steering = std::move(loaded.steering_model);
        handle.detector = std::move(loaded.detector);
        return handle;
      }
      // Legacy (pre-v3) cache without int8 rung calibrations: refit so the
      // precision benches compare against a fully quantized pipeline.
      std::fprintf(stderr, "[fit] cached detector predates quantized rungs; refitting\n");
    } catch (const SerializationError& err) {
      // Pre-trailer or damaged cache entry: refit and overwrite it.
      std::fprintf(stderr, "[fit] cached detector unusable (%s); refitting\n", err.what());
    }
  }

  handle.detector = std::make_unique<core::NoveltyDetector>(std::move(config));
  if (vbp) handle.detector->attach_steering_model(&env.steering);
  Rng rng(seed);
  std::fprintf(stderr, "[fit] training autoencoder (%lld epochs)...\n",
               static_cast<long long>(handle.detector->config().train_epochs));
  handle.detector->fit(env.outdoor_train.images(), rng);
  core::PipelineIo::save_file(cache_path, *handle.detector, vbp ? &env.steering : nullptr);
  return handle;
}

double mean_of(const std::vector<double>& values) {
  double acc = 0.0;
  for (double v : values) acc += v;
  return values.empty() ? 0.0 : acc / static_cast<double>(values.size());
}

void print_score_comparison(const std::string& title, const std::string& target_name,
                            const std::vector<double>& target_scores, const std::string& novel_name,
                            const std::vector<double>& novel_scores, bool high_is_novel,
                            double threshold, int64_t bins) {
  const auto [tmin, tmax] = std::minmax_element(target_scores.begin(), target_scores.end());
  const auto [nmin, nmax] = std::minmax_element(novel_scores.begin(), novel_scores.end());
  double lo = std::min(*tmin, *nmin);
  double hi = std::max(*tmax, *nmax);
  if (lo == hi) hi = lo + 1e-9;

  Histogram target_hist(lo, hi, bins);
  Histogram novel_hist(lo, hi, bins);
  target_hist.add_all(target_scores);
  novel_hist.add_all(novel_scores);

  std::printf("\n%s\n", title.c_str());
  std::printf("%12s | %-26s | %-26s\n", "score", target_name.c_str(), novel_name.c_str());
  const int64_t bar = 24;
  int64_t peak = 1;
  for (int64_t b = 0; b < bins; ++b) {
    peak = std::max({peak, target_hist.count(b), novel_hist.count(b)});
  }
  for (int64_t b = 0; b < bins; ++b) {
    std::string tb(static_cast<size_t>(target_hist.count(b) * bar / peak), '#');
    std::string nb(static_cast<size_t>(novel_hist.count(b) * bar / peak), '*');
    std::printf("%12.4f | %-26s | %-26s\n", target_hist.bin_center(b), tb.c_str(), nb.c_str());
  }

  const double auc = high_is_novel ? auc_high_is_positive(novel_scores, target_scores)
                                   : auc_low_is_positive(novel_scores, target_scores);
  const DetectionRates rates = high_is_novel
                                   ? rates_at_threshold_high(novel_scores, target_scores, threshold)
                                   : rates_at_threshold_low(novel_scores, target_scores, threshold);
  std::printf("  %s mean = %.4f   %s mean = %.4f\n", target_name.c_str(), mean_of(target_scores),
              novel_name.c_str(), mean_of(novel_scores));
  std::printf("  distribution overlap = %.3f   AUC = %.3f\n",
              distribution_overlap(target_scores, novel_scores), auc);
  std::printf("  threshold (99th pct rule) = %.4f -> %.1f%% novel flagged, %.1f%% target flagged\n",
              threshold, 100.0 * rates.true_positive_rate, 100.0 * rates.false_positive_rate);
}

void print_header(const std::string& figure, const std::string& description) {
  std::printf("==============================================================\n");
  std::printf("%s\n%s\n", figure.c_str(), description.c_str());
  std::printf("==============================================================\n");
}

}  // namespace salnov::bench
