// Figure 5 (the paper's headline experiment): train the one-class
// autoencoder on the target driving dataset (DSU-sim = outdoor scenes) and
// score held-out target samples against the novel dataset (DSI-sim = indoor
// scenes), in the paper's three configurations:
//
//   (left)   raw images + MSE loss     — the Richter & Roy baseline,
//   (middle) VBP images + MSE loss     — preprocessing ablation,
//   (right)  VBP images + SSIM loss    — the proposed method.
//
// The paper reports (right plot): target-class mean SSIM ~0.7, novel-class
// SSIM ~0, and 100% of novel samples classified as novel; and that the
// separation improves monotonically left -> middle -> right.
#include <cstdio>

#include "common.hpp"
#include "metrics/roc.hpp"

int main() {
  using namespace salnov;
  bench::print_header(
      "Figure 5 — dataset comparison (DSU-sim target vs DSI-sim novel)",
      "Three detector configurations; histograms of reconstruction scores for\n"
      "held-out target images vs novel-dataset images.");

  bench::Env& env = bench::environment();

  struct Config {
    const char* name;
    core::Preprocessing pre;
    core::ReconstructionScore score;
  };
  const Config configs[] = {
      {"original images + MSE loss (Richter & Roy baseline)", core::Preprocessing::kRaw,
       core::ReconstructionScore::kMse},
      {"VBP images + MSE loss", core::Preprocessing::kVbp, core::ReconstructionScore::kMse},
      {"VBP images + SSIM loss (proposed)", core::Preprocessing::kVbp,
       core::ReconstructionScore::kSsim},
  };

  struct Row {
    const char* name;
    double auc;
    double novel_detected;
    double target_flagged;
  };
  std::vector<Row> summary;

  for (const Config& config : configs) {
    bench::DetectorHandle handle =
        bench::fit_or_load_detector(env, bench::bench_detector_config(config.pre, config.score), 5);
    const core::NoveltyDetector& detector = *handle.detector;

    const auto target_scores = detector.scores(env.outdoor_test.images());
    const auto novel_scores = detector.scores(env.indoor_test.images());
    const bool high_is_novel = config.score == core::ReconstructionScore::kMse;

    bench::print_score_comparison(std::string("[") + config.name + "]", "target (outdoor)",
                                  target_scores, "novel (indoor)", novel_scores, high_is_novel,
                                  detector.threshold().threshold());

    const double auc = high_is_novel ? auc_high_is_positive(novel_scores, target_scores)
                                     : auc_low_is_positive(novel_scores, target_scores);
    const DetectionRates rates =
        high_is_novel
            ? rates_at_threshold_high(novel_scores, target_scores, detector.threshold().threshold())
            : rates_at_threshold_low(novel_scores, target_scores, detector.threshold().threshold());
    summary.push_back({config.name, auc, rates.true_positive_rate, rates.false_positive_rate});
  }

  std::printf("\nSummary (paper shape: separation improves left -> middle -> right)\n");
  std::printf("%-55s %8s %14s %14s\n", "configuration", "AUC", "novel flagged", "target flagged");
  for (const Row& row : summary) {
    std::printf("%-55s %8.3f %13.1f%% %13.1f%%\n", row.name, row.auc, 100.0 * row.novel_detected,
                100.0 * row.target_flagged);
  }
  return 0;
}
