// Figure 2: "VBP masks are tied to learned features" — compare VBP masks of
// a network trained on real steering angles against the same architecture
// trained on random steering angles.
//
// The paper's figure is qualitative (the random-label network's mask is
// garbled; the real-label network's mask picks out the road). We report two
// quantitative proxies per model, averaged over scenes:
//   * road-region top-10% precision: fraction of the brightest mask pixels
//     that land on the road surface/edges,
//   * relevance-band energy fraction vs the uniform-mask baseline,
// and dump mask PGMs for visual inspection.
#include <cstdio>

#include "common.hpp"
#include "driving/steering_trainer.hpp"
#include "image/image_io.hpp"
#include "roadsim/rasterizer.hpp"
#include "saliency/visual_backprop.hpp"

namespace {

using namespace salnov;

Image road_region_mask(const roadsim::SceneParams& params, int64_t h, int64_t w) {
  const roadsim::RoadGeometry geo(params, h, w);
  Image mask(h, w);
  for (int64_t y = geo.horizon_row() + 1; y < h; ++y) {
    for (int64_t x = 0; x < w; ++x) {
      if (geo.on_road(y, x) || geo.on_edge(y, x)) mask(y, x) = 1.0f;
    }
  }
  return mask;
}

struct Stats {
  double road_topk = 0.0;
  double edge_energy = 0.0;
};

Stats evaluate(nn::Sequential& model, bench::Env& env, int64_t count, const std::string& dump_tag) {
  saliency::VisualBackProp vbp;
  Stats stats;
  for (int64_t i = 0; i < count; ++i) {
    const Image mask = vbp.compute(model, env.outdoor_test.image(i));
    const Image road = road_region_mask(env.outdoor_test.params(i), bench::kHeight, bench::kWidth);
    const Image edges = saliency::dilate(
        env.outdoor.relevance_mask(env.outdoor_test.params(i), bench::kHeight, bench::kWidth), 1);
    stats.road_topk += saliency::topk_precision(mask, road, 0.10);
    stats.edge_energy += saliency::mask_energy_fraction(mask, edges);
    if (i < 3) {
      write_pgm(bench::artifact_dir() + "/fig2_" + dump_tag + "_mask" + std::to_string(i) + ".pgm",
                mask);
    }
  }
  stats.road_topk /= static_cast<double>(count);
  stats.edge_energy /= static_cast<double>(count);
  return stats;
}

}  // namespace

int main() {
  using namespace salnov;
  bench::print_header("Figure 2 — VBP masks are tied to learned features",
                      "Same CNN architecture trained on real vs random steering labels;\n"
                      "the real-label network's saliency should align with road geometry.");

  bench::Env& env = bench::environment();
  const int64_t eval_count = 40;

  // Real-label model: the shared environment's steering network.
  // Random-label control: same architecture, labels replaced by U(-1,1).
  Rng rng(42);
  nn::Sequential random_model = driving::build_pilotnet(driving::PilotNetConfig::compact(), rng);
  driving::SteeringTrainOptions options;
  options.epochs = 25;
  options.learning_rate = 2e-3;
  options.randomize_labels = true;
  std::fprintf(stderr, "[fig2] training random-label control model...\n");
  driving::train_steering_model(random_model, env.outdoor_train, options, rng);

  double area = 0.0, edge_area = 0.0;
  for (int64_t i = 0; i < eval_count; ++i) {
    area += road_region_mask(env.outdoor_test.params(i), bench::kHeight, bench::kWidth).mean();
    edge_area += saliency::dilate(
                     env.outdoor.relevance_mask(env.outdoor_test.params(i), bench::kHeight,
                                                bench::kWidth),
                     1)
                     .mean();
  }
  area /= static_cast<double>(eval_count);
  edge_area /= static_cast<double>(eval_count);

  const Stats trained = evaluate(env.steering, env, eval_count, "trained");
  const Stats random = evaluate(random_model, env, eval_count, "random");

  for (int64_t i = 0; i < 3; ++i) {
    write_pgm(bench::artifact_dir() + "/fig2_input" + std::to_string(i) + ".pgm",
              env.outdoor_test.image(i));
  }

  std::printf("\n%-34s %16s %16s %16s\n", "metric (mean over 40 scenes)", "trained labels",
              "random labels", "uniform mask");
  std::printf("%-34s %16.3f %16.3f %16.3f\n", "road-region top-10%% precision", trained.road_topk,
              random.road_topk, area);
  std::printf("%-34s %16.3f %16.3f %16.3f\n", "edge-band energy fraction", trained.edge_energy,
              random.edge_energy, edge_area);
  // Masks are weight-dependent: quantify how different the two models'
  // masks are for identical inputs.
  saliency::VisualBackProp vbp;
  double mask_diff = 0.0;
  for (int64_t i = 0; i < 10; ++i) {
    const Image a = vbp.compute(env.steering, env.outdoor_test.image(i));
    const Image b = vbp.compute(random_model, env.outdoor_test.image(i));
    mask_diff += Tensor::max_abs_diff(a.tensor(), b.tensor());
  }
  std::printf("%-34s %16.3f\n", "mean peak mask difference", mask_diff / 10.0);

  std::printf("\nMask PGMs dumped to %s/fig2_*.pgm for visual comparison\n",
              bench::artifact_dir().c_str());
  std::printf("Shape check vs paper: the paper's Fig. 2 is qualitative (random-label masks\n"
              "look garbled, real-label masks trace the road). Here the alignment proxies\n"
              "are reported for one training run each; they fluctuate across runs on\n"
              "synthetic scenes, so inspect the dumped masks alongside the numbers.\n");
  return 0;
}
