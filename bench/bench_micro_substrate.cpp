// Microbenchmarks of the substrate operations (google-benchmark): GEMM,
// convolution forward/backward, SSIM metric and loss gradient, VBP and LRP
// saliency, autoencoder forward. These size the per-frame latency budget of
// a deployed detector.
#include <benchmark/benchmark.h>

#include "core/autoencoder.hpp"
#include "driving/pilotnet.hpp"
#include "metrics/ssim.hpp"
#include "nn/conv2d.hpp"
#include "nn/ssim_loss.hpp"
#include "saliency/lrp.hpp"
#include "saliency/visual_backprop.hpp"
#include "tensor/gemm.hpp"
#include "tensor/rng.hpp"

namespace {

using namespace salnov;

void BM_Gemm(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  const Tensor a = rng.uniform_tensor({n, n}, -1.0, 1.0);
  const Tensor b = rng.uniform_tensor({n, n}, -1.0, 1.0);
  Tensor c({n, n});
  for (auto _ : state) {
    gemm(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_Conv2dForward(benchmark::State& state) {
  Rng rng(2);
  nn::Conv2dConfig config{1, 24, 5, 5, 2, 0};
  nn::Conv2d conv(config, rng);
  const Tensor input = rng.uniform_tensor({1, 1, 60, 160}, 0.0, 1.0);
  for (auto _ : state) {
    Tensor out = conv.forward(input, nn::Mode::kInfer);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_Conv2dForward);

void BM_Conv2dTrainStep(benchmark::State& state) {
  Rng rng(3);
  nn::Conv2dConfig config{1, 24, 5, 5, 2, 0};
  nn::Conv2d conv(config, rng);
  const Tensor input = rng.uniform_tensor({8, 1, 60, 160}, 0.0, 1.0);
  const Shape out_shape = conv.output_shape(input.shape());
  const Tensor grad = rng.uniform_tensor(out_shape, -1.0, 1.0);
  for (auto _ : state) {
    conv.forward(input, nn::Mode::kTrain);
    Tensor g = conv.backward(grad);
    benchmark::DoNotOptimize(g.data());
  }
}
BENCHMARK(BM_Conv2dTrainStep);

void BM_SsimMetric(benchmark::State& state) {
  Rng rng(4);
  const Image a(60, 160, rng.uniform_tensor({60 * 160}, 0.0, 1.0));
  const Image b(60, 160, rng.uniform_tensor({60 * 160}, 0.0, 1.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ssim(a, b));
  }
}
BENCHMARK(BM_SsimMetric);

void BM_SsimLossGradient(benchmark::State& state) {
  Rng rng(5);
  nn::SsimLoss loss(60, 160);
  const Tensor x = rng.uniform_tensor({8, 60 * 160}, 0.0, 1.0);
  const Tensor y = rng.uniform_tensor({8, 60 * 160}, 0.0, 1.0);
  for (auto _ : state) {
    Tensor g = loss.gradient(y, x);
    benchmark::DoNotOptimize(g.data());
  }
}
BENCHMARK(BM_SsimLossGradient);

nn::Sequential& compact_pilotnet() {
  static nn::Sequential model = [] {
    Rng rng(6);
    return driving::build_pilotnet(driving::PilotNetConfig::compact(), rng);
  }();
  return model;
}

void BM_PilotNetForward(benchmark::State& state) {
  Rng rng(7);
  const Tensor input = rng.uniform_tensor({1, 1, 60, 160}, 0.0, 1.0);
  for (auto _ : state) {
    Tensor out = compact_pilotnet().forward(input, nn::Mode::kInfer);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_PilotNetForward);

void BM_VisualBackProp(benchmark::State& state) {
  Rng rng(8);
  const Image input(60, 160, rng.uniform_tensor({60 * 160}, 0.0, 1.0));
  saliency::VisualBackProp vbp;
  for (auto _ : state) {
    Image mask = vbp.compute(compact_pilotnet(), input);
    benchmark::DoNotOptimize(mask.tensor().data());
  }
}
BENCHMARK(BM_VisualBackProp);

void BM_Lrp(benchmark::State& state) {
  Rng rng(9);
  const Image input(60, 160, rng.uniform_tensor({60 * 160}, 0.0, 1.0));
  saliency::LayerwiseRelevancePropagation lrp;
  for (auto _ : state) {
    Image mask = lrp.compute(compact_pilotnet(), input);
    benchmark::DoNotOptimize(mask.tensor().data());
  }
}
BENCHMARK(BM_Lrp);

void BM_AutoencoderForward(benchmark::State& state) {
  Rng rng(10);
  nn::Sequential ae = core::build_autoencoder(core::AutoencoderConfig::paper(), rng);
  const Tensor input = rng.uniform_tensor({1, 9600}, 0.0, 1.0);
  for (auto _ : state) {
    Tensor out = ae.forward(input, nn::Mode::kInfer);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_AutoencoderForward);

}  // namespace

BENCHMARK_MAIN();
