// Microbenchmarks of the substrate operations (google-benchmark): GEMM,
// convolution forward/backward, SSIM metric and loss gradient, VBP and LRP
// saliency, autoencoder forward. These size the per-frame latency budget of
// a deployed detector.
//
// Before the google-benchmark suite runs, main() measures the headline
// substrate numbers — per-kernel GEMM GFLOP/s, detector frames/sec, and
// workspace allocation counts — and writes them to BENCH_substrate.json
// for CI trend tracking.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <fstream>

#include "core/autoencoder.hpp"
#include "core/novelty_detector.hpp"
#include "driving/pilotnet.hpp"
#include "metrics/ssim.hpp"
#include "nn/conv2d.hpp"
#include "nn/ssim_loss.hpp"
#include "parallel/parallel_for.hpp"
#include "roadsim/dataset.hpp"
#include "roadsim/outdoor_generator.hpp"
#include "saliency/lrp.hpp"
#include "saliency/visual_backprop.hpp"
#include "tensor/gemm.hpp"
#include "tensor/gemm_int8.hpp"
#include "tensor/rng.hpp"
#include "tensor/workspace.hpp"

namespace {

using namespace salnov;

void BM_Gemm(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  const Tensor a = rng.uniform_tensor({n, n}, -1.0, 1.0);
  const Tensor b = rng.uniform_tensor({n, n}, -1.0, 1.0);
  Tensor c({n, n});
  for (auto _ : state) {
    gemm(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmInt8(benchmark::State& state) {
  // The quantized-rung GEMM: u8 activations x s8 weights with exact int32
  // accumulation and the fused fmaf dequant epilogue, pre-packed B (the
  // production layout in nn::QuantizedForward).
  const int64_t n = state.range(0);
  Rng rng(1);
  std::vector<uint8_t> a(static_cast<size_t>(n * n));
  std::vector<int8_t> b(static_cast<size_t>(n * n));
  std::vector<float> bias(static_cast<size_t>(n));
  std::vector<float> c(static_cast<size_t>(n * n));
  for (auto& v : a) v = static_cast<uint8_t>(rng.uniform_int(0, 127));
  for (auto& v : b) v = static_cast<int8_t>(rng.uniform_int(-127, 127));
  for (auto& v : bias) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  const PackedQuantMatrix packed = pack_quant_b(b.data(), n, n);
  QuantEpilogue epilogue;
  epilogue.scale = 1e-3f;
  epilogue.bias_col = bias.data();
  for (auto _ : state) {
    gemm_u8s8_dequant(a.data(), b.data(), c.data(), n, n, n, epilogue, &packed);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmInt8)->Arg(64)->Arg(128)->Arg(256);

void BM_Conv2dForward(benchmark::State& state) {
  Rng rng(2);
  nn::Conv2dConfig config{1, 24, 5, 5, 2, 0};
  nn::Conv2d conv(config, rng);
  const Tensor input = rng.uniform_tensor({1, 1, 60, 160}, 0.0, 1.0);
  for (auto _ : state) {
    Tensor out = conv.forward(input, nn::Mode::kInfer);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_Conv2dForward);

void BM_Conv2dTrainStep(benchmark::State& state) {
  Rng rng(3);
  nn::Conv2dConfig config{1, 24, 5, 5, 2, 0};
  nn::Conv2d conv(config, rng);
  const Tensor input = rng.uniform_tensor({8, 1, 60, 160}, 0.0, 1.0);
  const Shape out_shape = conv.output_shape(input.shape());
  const Tensor grad = rng.uniform_tensor(out_shape, -1.0, 1.0);
  for (auto _ : state) {
    conv.forward(input, nn::Mode::kTrain);
    Tensor g = conv.backward(grad);
    benchmark::DoNotOptimize(g.data());
  }
}
BENCHMARK(BM_Conv2dTrainStep);

void BM_SsimMetric(benchmark::State& state) {
  Rng rng(4);
  const Image a(60, 160, rng.uniform_tensor({60 * 160}, 0.0, 1.0));
  const Image b(60, 160, rng.uniform_tensor({60 * 160}, 0.0, 1.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ssim(a, b));
  }
}
BENCHMARK(BM_SsimMetric);

void BM_SsimLossGradient(benchmark::State& state) {
  Rng rng(5);
  nn::SsimLoss loss(60, 160);
  const Tensor x = rng.uniform_tensor({8, 60 * 160}, 0.0, 1.0);
  const Tensor y = rng.uniform_tensor({8, 60 * 160}, 0.0, 1.0);
  for (auto _ : state) {
    Tensor g = loss.gradient(y, x);
    benchmark::DoNotOptimize(g.data());
  }
}
BENCHMARK(BM_SsimLossGradient);

nn::Sequential& compact_pilotnet() {
  static nn::Sequential model = [] {
    Rng rng(6);
    return driving::build_pilotnet(driving::PilotNetConfig::compact(), rng);
  }();
  return model;
}

void BM_PilotNetForward(benchmark::State& state) {
  Rng rng(7);
  const Tensor input = rng.uniform_tensor({1, 1, 60, 160}, 0.0, 1.0);
  for (auto _ : state) {
    Tensor out = compact_pilotnet().forward(input, nn::Mode::kInfer);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_PilotNetForward);

void BM_VisualBackProp(benchmark::State& state) {
  Rng rng(8);
  const Image input(60, 160, rng.uniform_tensor({60 * 160}, 0.0, 1.0));
  saliency::VisualBackProp vbp;
  for (auto _ : state) {
    Image mask = vbp.compute(compact_pilotnet(), input);
    benchmark::DoNotOptimize(mask.tensor().data());
  }
}
BENCHMARK(BM_VisualBackProp);

void BM_Lrp(benchmark::State& state) {
  Rng rng(9);
  const Image input(60, 160, rng.uniform_tensor({60 * 160}, 0.0, 1.0));
  saliency::LayerwiseRelevancePropagation lrp;
  for (auto _ : state) {
    Image mask = lrp.compute(compact_pilotnet(), input);
    benchmark::DoNotOptimize(mask.tensor().data());
  }
}
BENCHMARK(BM_Lrp);

void BM_AutoencoderForward(benchmark::State& state) {
  Rng rng(10);
  nn::Sequential ae = core::build_autoencoder(core::AutoencoderConfig::paper(), rng);
  const Tensor input = rng.uniform_tensor({1, 9600}, 0.0, 1.0);
  for (auto _ : state) {
    Tensor out = ae.forward(input, nn::Mode::kInfer);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_AutoencoderForward);

// --- Headline substrate numbers -> BENCH_substrate.json --------------------

using Clock = std::chrono::steady_clock;

/// Seconds per call, adaptive (>= 3 batches and 0.2 s of work; best batch).
template <typename Fn>
double time_per_call(Fn&& fn) {
  fn();  // warm-up
  double best = 1e300;
  int64_t iters = 1;
  double total = 0.0;
  int batches = 0;
  while (total < 0.2 || batches < 3) {
    const auto t0 = Clock::now();
    for (int64_t i = 0; i < iters; ++i) fn();
    const double dt = std::chrono::duration<double>(Clock::now() - t0).count();
    if (dt / static_cast<double>(iters) < best) best = dt / static_cast<double>(iters);
    total += dt;
    ++batches;
    if (dt < 0.02) iters *= 4;
  }
  return best;
}

double gemm_gflops_256(GemmKernel kernel, bool packed) {
  set_gemm_kernel(kernel);
  const int64_t n = 256;
  Rng rng(21);
  const Tensor a = rng.uniform_tensor({n, n}, -1.0, 1.0);
  const Tensor b = rng.uniform_tensor({n, n}, -1.0, 1.0);
  Tensor c({n, n});
  PackedMatrix pa, pb;
  const PackedMatrix* ppa = nullptr;
  const PackedMatrix* ppb = nullptr;
  if (packed) {
    pa = pack_a_panels(a.data(), n, n);
    pb = pack_b_panels(b.data(), n, n);
    ppa = &pa;
    ppb = &pb;
  }
  const double sec = time_per_call(
      [&] { gemm_ex(a.data(), b.data(), c.data(), n, n, n, GemmEpilogue{}, ppa, ppb); });
  return 2.0 * static_cast<double>(n) * n * n / sec / 1e9;
}

/// int8 GEMM throughput at 256^3 through the production dequant entry point
/// (pre-packed B). Reported in GOP/s with the same 2n^3 op count as the
/// float rows, so the columns compare directly.
double gemm_int8_gops_256(GemmInt8Kernel kernel) {
  set_gemm_int8_kernel(kernel);
  const int64_t n = 256;
  Rng rng(22);
  std::vector<uint8_t> a(static_cast<size_t>(n * n));
  std::vector<int8_t> b(static_cast<size_t>(n * n));
  std::vector<float> bias(static_cast<size_t>(n));
  std::vector<float> c(static_cast<size_t>(n * n));
  for (auto& v : a) v = static_cast<uint8_t>(rng.uniform_int(0, 127));
  for (auto& v : b) v = static_cast<int8_t>(rng.uniform_int(-127, 127));
  for (auto& v : bias) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  const PackedQuantMatrix packed = pack_quant_b(b.data(), n, n);
  QuantEpilogue epilogue;
  epilogue.scale = 1e-3f;
  epilogue.bias_col = bias.data();
  const double sec = time_per_call(
      [&] { gemm_u8s8_dequant(a.data(), b.data(), c.data(), n, n, n, epilogue, &packed); });
  return 2.0 * static_cast<double>(n) * n * n / sec / 1e9;
}

void emit_substrate_json() {
  const GemmKernel default_kernel = active_gemm_kernel();
  const GemmInt8Kernel default_int8_kernel = active_gemm_int8_kernel();

  // Single-thread per-kernel GEMM throughput at 256^3 — the acceptance
  // criterion records scalar and SIMD side by side.
  parallel::set_num_threads(1);
  const double scalar_gflops = gemm_gflops_256(GemmKernel::kScalar, false);
  double simd_gflops = 0.0;
  double simd_packed_gflops = 0.0;
  if (gemm_simd_available()) {
    simd_gflops = gemm_gflops_256(GemmKernel::kSimd, false);
    simd_packed_gflops = gemm_gflops_256(GemmKernel::kSimd, true);
  }
  set_gemm_kernel(default_kernel);

  const double int8_scalar_gops = gemm_int8_gops_256(GemmInt8Kernel::kScalar);
  double int8_simd_gops = 0.0;
  if (gemm_int8_simd_available()) int8_simd_gops = gemm_int8_gops_256(GemmInt8Kernel::kSimd);
  set_gemm_int8_kernel(default_int8_kernel);

  // Detector frames/sec at paper resolution (tiny autoencoder so the fit
  // stays in bench budget), plus workspace allocation counters proving the
  // steady state allocates nothing.
  constexpr int64_t kH = 60, kW = 160;
  Rng rng(31);
  roadsim::OutdoorSceneGenerator outdoor;
  const auto train = roadsim::DrivingDataset::generate(outdoor, 24, kH, kW, rng);
  const auto probe = roadsim::DrivingDataset::generate(outdoor, 8, kH, kW, rng);
  nn::Sequential steering = driving::build_pilotnet(driving::PilotNetConfig::tiny(kH, kW), rng);

  core::NoveltyDetectorConfig config;
  config.height = kH;
  config.width = kW;
  config.preprocessing = core::Preprocessing::kVbp;
  config.score = core::ReconstructionScore::kSsim;
  config.autoencoder = core::AutoencoderConfig::tiny(kH, kW);
  config.train_epochs = 2;

  core::NoveltyDetector detector(config);
  detector.attach_steering_model(&steering);
  const int64_t allocs_before_warmup = Workspace::heap_allocation_count();
  Rng fit_rng(11);
  detector.fit(train.images(), fit_rng);
  double fps_1t = 0.0, fps_4t = 0.0;
  int64_t allocs_after_warmup = 0;
  {
    parallel::set_num_threads(1);
    size_t next = 0;
    const double sec = time_per_call([&] {
      detector.score(probe.images()[next]);
      next = (next + 1) % probe.images().size();
    });
    fps_1t = 1.0 / sec;
  }
  {
    parallel::set_num_threads(4);
    size_t next = 0;
    // First call on the wider pool is warm-up for the new workers' arenas.
    detector.score(probe.images()[0]);
    allocs_after_warmup = Workspace::heap_allocation_count();
    const double sec = time_per_call([&] {
      detector.score(probe.images()[next]);
      next = (next + 1) % probe.images().size();
    });
    fps_4t = 1.0 / sec;
  }
  const int64_t steady_allocs = Workspace::heap_allocation_count() - allocs_after_warmup;
  parallel::set_num_threads(0);

  std::ofstream json("BENCH_substrate.json");
  json << "{\n"
       << "  \"gemm_256\": {\n"
       << "    \"scalar_gflops\": " << scalar_gflops << ",\n"
       << "    \"simd_gflops\": " << simd_gflops << ",\n"
       << "    \"simd_packed_gflops\": " << simd_packed_gflops << ",\n"
       << "    \"simd_kernel\": \""
       << (gemm_simd_available() ? gemm_kernel_name(GemmKernel::kSimd) : "none") << "\",\n"
       << "    \"speedup_simd_over_scalar\": "
       << (scalar_gflops > 0.0 ? simd_gflops / scalar_gflops : 0.0) << "\n"
       << "  },\n"
       << "  \"gemm_int8_256\": {\n"
       << "    \"scalar_gops\": " << int8_scalar_gops << ",\n"
       << "    \"simd_gops\": " << int8_simd_gops << ",\n"
       << "    \"simd_kernel\": \""
       << (gemm_int8_simd_available() ? gemm_int8_kernel_name(GemmInt8Kernel::kSimd) : "none")
       << "\",\n"
       << "    \"speedup_int8_over_float_simd\": "
       << (simd_packed_gflops > 0.0 ? int8_simd_gops / simd_packed_gflops : 0.0) << "\n"
       << "  },\n"
       << "  \"detector\": {\n"
       << "    \"frames_per_sec_1_thread\": " << fps_1t << ",\n"
       << "    \"frames_per_sec_4_threads\": " << fps_4t << "\n"
       << "  },\n"
       << "  \"workspace\": {\n"
       << "    \"chunk_allocs_warmup\": " << (allocs_after_warmup - allocs_before_warmup) << ",\n"
       << "    \"chunk_allocs_steady_state\": " << steady_allocs << "\n"
       << "  }\n"
       << "}\n";
  std::printf(
      "BENCH_substrate.json: gemm256 scalar %.2f GF/s, simd %.2f GF/s, simd+packed %.2f GF/s "
      "(x%.2f); int8 gemm256 scalar %.2f GOP/s, simd %.2f GOP/s (x%.2f over float simd+packed); "
      "detector %.1f fps (1t) / %.1f fps (4t); steady-state workspace allocs %lld\n",
      scalar_gflops, simd_gflops, simd_packed_gflops,
      scalar_gflops > 0.0 ? simd_gflops / scalar_gflops : 0.0, int8_scalar_gops, int8_simd_gops,
      simd_packed_gflops > 0.0 ? int8_simd_gops / simd_packed_gflops : 0.0, fps_1t, fps_4t,
      (long long)steady_allocs);
}

}  // namespace

int main(int argc, char** argv) {
  emit_substrate_json();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
