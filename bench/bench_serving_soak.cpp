// Serving-runtime soak: long-haul robustness of the supervisor + server.
//
// Phase A streams frames synchronously through a Supervisor under a fake
// clock with a deterministic stall schedule — periodic saliency spikes, one
// consecutive-failure episode that trips the circuit breaker, and one
// sustained reconstruct stall that walks the ladder all the way to sensor
// hold. The run asserts the runtime reacted (trip + probe restore, step-downs
// and promotions, final mode back at the top) and every frame is accounted
// for. Phase B bursts frames at a ServingServer faster than the worker can
// drain them, asserting the bounded queue sheds instead of growing and the
// high-water mark respects the capacity.
//
// Frame count is argv[1] (default 10000, minimum 200); CI smoke passes a
// small count. Emits BENCH_serving.json for trend tracking.
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "faults/timing_faults.hpp"
#include "serving/server.hpp"
#include "serving/supervisor.hpp"

namespace salnov::bench {
namespace {

constexpr uint64_t kDetectorSeed = 5;
constexpr int64_t kMs = 1'000'000;

double elapsed_ms(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

int check(bool ok, const char* what) {
  if (!ok) std::fprintf(stderr, "SOAK FAILURE: %s\n", what);
  return ok ? 0 : 1;
}

}  // namespace

int run(int64_t frames) {
  print_header("Serving soak",
               "Supervisor under a deterministic stall schedule (fake clock), then a burst\n"
               "through the bounded-queue ServingServer. Asserts the degraded-mode ladder,\n"
               "breaker, and shedding all engage and recover.");

  Env& env = environment();
  DetectorHandle handle = fit_or_load_detector(
      env, bench_detector_config(core::Preprocessing::kVbp, core::ReconstructionScore::kSsim),
      kDetectorSeed);
  const core::NoveltyDetector& detector = *handle.detector;
  nn::Sequential* steering = handle.steering ? handle.steering.get() : &env.steering;
  const std::vector<Image>& pool = env.outdoor_test.images();

  // --- Phase A: deterministic soak under the fake clock --------------------
  // Only injected stalls advance time, so the overrun/ladder/breaker trace
  // depends solely on the schedule below, not on machine speed.
  faults::TimingFaultInjector stalls;
  {
    faults::TimingFault spike;  // isolated saliency spikes, absorbed (demote_after = 2)
    spike.stage = static_cast<int>(serving::Stage::kSaliency);
    spike.stall_ns = 60 * kMs;
    spike.period = 97;
    stalls.add(spike);

    faults::TimingFault episode;  // consecutive failures: trips the breaker
    episode.stage = static_cast<int>(serving::Stage::kSaliency);
    episode.stall_ns = 60 * kMs;
    episode.first_frame = frames / 10;
    episode.last_frame = frames / 10 + 4;
    stalls.add(episode);

    faults::TimingFault outage;  // hits every rung: ladder descends to sensor hold
    outage.stage = static_cast<int>(serving::Stage::kReconstruct);
    outage.stall_ns = 30 * kMs;
    outage.first_frame = frames / 2;
    outage.last_frame = frames / 2 + 19;
    stalls.add(outage);
  }

  serving::SupervisorConfig config;
  config.timing_faults = &stalls;
  config.demote_after_bad_frames = 2;  // absorb isolated spikes, react to episodes
  serving::FakeClock clock;
  serving::Supervisor supervisor(detector, steering, config, &clock);

  std::printf("\nPhase A: %" PRId64 " frames, periodic spikes + breaker episode + outage...\n",
              frames);
  const auto a_start = std::chrono::steady_clock::now();
  for (int64_t i = 0; i < frames; ++i) {
    supervisor.process(pool[static_cast<size_t>(i) % pool.size()]);
  }
  const double a_ms = elapsed_ms(a_start);
  const serving::HealthSnapshot a = supervisor.health();

  std::printf("  %.0f ms (%.1f frames/s), final mode %s, breaker %s\n", a_ms,
              1000.0 * static_cast<double>(frames) / a_ms, serving::serving_mode_name(a.mode),
              serving::breaker_state_name(a.breaker_state));
  std::printf("  overruns %" PRId64 ", step-downs %" PRId64 ", promotions %" PRId64
              ", trips %" PRId64 ", probe ok/fail %" PRId64 "/%" PRId64 "\n",
              a.deadline_overruns, a.step_downs, a.promotions, a.breaker_trips, a.probe_successes,
              a.probe_failures);

  int failures = 0;
  failures += check(a.frames_total == frames, "phase A processed every frame");
  failures += check(a.frames_scored + a.frames_held + a.frames_abandoned + a.frames_sensor_bad ==
                        frames,
                    "phase A accounted for every frame");
  failures += check(a.deadline_overruns > 0, "stalls produced overruns");
  failures += check(a.breaker_trips >= 1, "breaker tripped on the episode");
  failures += check(a.probe_successes >= 1, "half-open probe restored saliency");
  failures += check(a.step_downs >= 5, "ladder stepped down through the outage");
  failures += check(a.promotions >= 2, "ladder climbed back after recovery");
  failures += check(a.mode == serving::ServingMode::kVbpSsim, "soak ends at the top rung");

  // --- Phase B: burst shedding through the bounded queue -------------------
  const int64_t burst = frames < 512 ? frames : frames / 8;
  serving::SupervisorConfig rt_config;  // real clock, generous budgets
  rt_config.stage_budget_ns.fill(0);    // latency rings only; no degradation
  rt_config.frame_budget_ns = 0;
  serving::Supervisor rt_supervisor(detector, steering, rt_config);
  serving::ServerConfig server_config;
  server_config.queue_capacity = 16;
  server_config.keep_results = false;

  std::printf("\nPhase B: bursting %" PRId64 " frames at a queue of %zu...\n", burst,
              server_config.queue_capacity);
  const auto b_start = std::chrono::steady_clock::now();
  serving::HealthSnapshot b;
  {
    serving::ServingServer server(rt_supervisor, server_config);
    for (int64_t i = 0; i < burst; ++i) {
      server.submit(pool[static_cast<size_t>(i) % pool.size()]);
    }
    server.stop();
    b = server.health();
  }
  const double b_ms = elapsed_ms(b_start);

  std::printf("  %.0f ms, processed %" PRId64 ", shed %" PRId64 ", high water %" PRId64 "/%"
              PRId64 "\n",
              b_ms, b.frames_total, b.queue_shed, b.queue_high_water, b.queue_capacity);
  failures += check(b.queue_high_water <= b.queue_capacity, "queue high water respects capacity");
  failures += check(b.frames_total + b.queue_shed == burst, "phase B accounted for every frame");
  failures += check(b.frames_total > 0, "worker processed at least some of the burst");

  std::ofstream json("BENCH_serving.json");
  json << "{\n  \"phase_a\": {\"frames\": " << frames << ", \"elapsed_ms\": " << a_ms
       << ", \"deadline_overruns\": " << a.deadline_overruns
       << ", \"step_downs\": " << a.step_downs << ", \"promotions\": " << a.promotions
       << ", \"breaker_trips\": " << a.breaker_trips
       << ", \"probe_successes\": " << a.probe_successes << ", \"final_mode\": \""
       << serving::serving_mode_name(a.mode) << "\", \"saliency_p99_ns\": "
       << a.stages[static_cast<size_t>(serving::Stage::kSaliency)].p99_ns << "},\n"
       << "  \"phase_b\": {\"frames_submitted\": " << burst
       << ", \"frames_processed\": " << b.frames_total << ", \"shed\": " << b.queue_shed
       << ", \"queue_high_water\": " << b.queue_high_water
       << ", \"queue_capacity\": " << b.queue_capacity << ", \"elapsed_ms\": " << b_ms << "}\n}\n";
  std::printf("\nwrote BENCH_serving.json\n");

  if (failures > 0) {
    std::fprintf(stderr, "%d soak invariant(s) violated\n", failures);
    return 1;
  }
  std::printf("all soak invariants held\n");
  return 0;
}

}  // namespace salnov::bench

int main(int argc, char** argv) {
  int64_t frames = 10'000;
  if (argc > 1) frames = std::atoll(argv[1]);
  if (frames < 200) {
    std::fprintf(stderr, "bench_serving_soak: frame count must be >= 200 (got %" PRId64 ")\n",
                 frames);
    return 2;
  }
  return salnov::bench::run(frames);
}
