// Serving-runtime soak: long-haul robustness of the supervisor + server.
//
// Phase A streams frames synchronously through a Supervisor under a fake
// clock with a deterministic stall schedule — periodic saliency spikes, one
// consecutive-failure episode that trips the circuit breaker, and one
// sustained reconstruct stall that walks the ladder all the way to sensor
// hold. The run asserts the runtime reacted (trip + probe restore, step-downs
// and promotions, final mode back at the top) and every frame is accounted
// for. Phase B bursts frames at a ServingServer faster than the worker can
// drain them, asserting the bounded queue sheds instead of growing and the
// high-water mark respects the capacity. Phase C drives eight live streams
// at uneven rates through a micro-batching ServingCluster with one stream
// stalling mid-run, asserting a dead camera never holds other streams'
// frames past the gather window (no cross-stream head-of-line blocking) and
// per-stream accounting (served + per-stream shed == submitted) stays
// exact. Phase D is the seeded chaos soak: the same uneven streams on three
// replicas while a deterministic replica-fault schedule (crash, hard-hang,
// slow replica, weight corruption) kills and restores replicas under the
// watchdog, gated on zero lost frames beyond the shed policy, bounded
// per-stream staleness, and the quarantine -> probe -> restore cycle; the
// same chaos shape is then recorded as a format-v4 trace and must replay
// bit-exactly at 1 and 4 worker threads.
//
// Frame count is argv[1] (default 10000, minimum 200); CI smoke passes a
// small count. Phase C runs a fixed 64 rounds regardless of the frame
// count; phases D scale with it (~frames chaos frames live, frames/8 per
// stream traced). Emits BENCH_serving.json for trend tracking.
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "faults/replica_faults.hpp"
#include "faults/timing_faults.hpp"
#include "parallel/parallel_for.hpp"
#include "serving/cluster.hpp"
#include "serving/server.hpp"
#include "serving/supervisor.hpp"
#include "trace/trace.hpp"

namespace salnov::bench {
namespace {

constexpr uint64_t kDetectorSeed = 5;
constexpr int64_t kMs = 1'000'000;

double elapsed_ms(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

int check(bool ok, const char* what) {
  if (!ok) std::fprintf(stderr, "SOAK FAILURE: %s\n", what);
  return ok ? 0 : 1;
}

}  // namespace

int run(int64_t frames) {
  print_header("Serving soak",
               "Supervisor under a deterministic stall schedule (fake clock), then a burst\n"
               "through the bounded-queue ServingServer. Asserts the degraded-mode ladder,\n"
               "breaker, and shedding all engage and recover.");

  Env& env = environment();
  DetectorHandle handle = fit_or_load_detector(
      env, bench_detector_config(core::Preprocessing::kVbp, core::ReconstructionScore::kSsim),
      kDetectorSeed);
  const core::NoveltyDetector& detector = *handle.detector;
  nn::Sequential* steering = handle.steering ? handle.steering.get() : &env.steering;
  const std::vector<Image>& pool = env.outdoor_test.images();

  // --- Phase A: deterministic soak under the fake clock --------------------
  // Only injected stalls advance time, so the overrun/ladder/breaker trace
  // depends solely on the schedule below, not on machine speed.
  faults::TimingFaultInjector stalls;
  {
    faults::TimingFault spike;  // isolated saliency spikes, absorbed (demote_after = 2)
    spike.stage = static_cast<int>(serving::Stage::kSaliency);
    spike.stall_ns = 60 * kMs;
    spike.period = 97;
    stalls.add(spike);

    faults::TimingFault episode;  // consecutive failures: trips the breaker
    episode.stage = static_cast<int>(serving::Stage::kSaliency);
    episode.stall_ns = 60 * kMs;
    episode.first_frame = frames / 10;
    episode.last_frame = frames / 10 + 4;
    stalls.add(episode);

    faults::TimingFault outage;  // hits every rung: ladder descends to sensor hold
    outage.stage = static_cast<int>(serving::Stage::kReconstruct);
    outage.stall_ns = 30 * kMs;
    outage.first_frame = frames / 2;
    outage.last_frame = frames / 2 + 19;
    stalls.add(outage);
  }

  serving::SupervisorConfig config;
  config.timing_faults = &stalls;
  config.demote_after_bad_frames = 2;  // absorb isolated spikes, react to episodes
  serving::FakeClock clock;
  serving::Supervisor supervisor(detector, steering, config, &clock);

  std::printf("\nPhase A: %" PRId64 " frames, periodic spikes + breaker episode + outage...\n",
              frames);
  const auto a_start = std::chrono::steady_clock::now();
  for (int64_t i = 0; i < frames; ++i) {
    supervisor.process(pool[static_cast<size_t>(i) % pool.size()]);
  }
  const double a_ms = elapsed_ms(a_start);
  const serving::HealthSnapshot a = supervisor.health();

  std::printf("  %.0f ms (%.1f frames/s), final mode %s, breaker %s\n", a_ms,
              1000.0 * static_cast<double>(frames) / a_ms, serving::serving_mode_name(a.mode),
              serving::breaker_state_name(a.breaker_state));
  std::printf("  overruns %" PRId64 ", step-downs %" PRId64 ", promotions %" PRId64
              ", trips %" PRId64 ", probe ok/fail %" PRId64 "/%" PRId64 "\n",
              a.deadline_overruns, a.step_downs, a.promotions, a.breaker_trips, a.probe_successes,
              a.probe_failures);

  int failures = 0;
  failures += check(a.frames_total == frames, "phase A processed every frame");
  failures += check(a.frames_scored + a.frames_held + a.frames_abandoned + a.frames_sensor_bad ==
                        frames,
                    "phase A accounted for every frame");
  failures += check(a.deadline_overruns > 0, "stalls produced overruns");
  failures += check(a.breaker_trips >= 1, "breaker tripped on the episode");
  failures += check(a.probe_successes >= 1, "half-open probe restored saliency");
  failures += check(a.step_downs >= 5, "ladder stepped down through the outage");
  failures += check(a.promotions >= 2, "ladder climbed back after recovery");
  failures += check(a.mode == serving::ServingMode::kVbpSsim, "soak ends at the top rung");

  // --- Phase B: burst shedding through the bounded queue -------------------
  const int64_t burst = frames < 512 ? frames : frames / 8;
  serving::SupervisorConfig rt_config;  // real clock, generous budgets
  rt_config.stage_budget_ns.fill(0);    // latency rings only; no degradation
  rt_config.frame_budget_ns = 0;
  serving::Supervisor rt_supervisor(detector, steering, rt_config);
  serving::ServerConfig server_config;
  server_config.queue_capacity = 16;
  server_config.keep_results = false;

  std::printf("\nPhase B: bursting %" PRId64 " frames at a queue of %zu...\n", burst,
              server_config.queue_capacity);
  const auto b_start = std::chrono::steady_clock::now();
  serving::HealthSnapshot b;
  {
    serving::ServingServer server(rt_supervisor, server_config);
    for (int64_t i = 0; i < burst; ++i) {
      server.submit(pool[static_cast<size_t>(i) % pool.size()]);
    }
    server.stop();
    b = server.health();
  }
  const double b_ms = elapsed_ms(b_start);

  std::printf("  %.0f ms, processed %" PRId64 ", shed %" PRId64 ", high water %" PRId64 "/%"
              PRId64 "\n",
              b_ms, b.frames_total, b.queue_shed, b.queue_high_water, b.queue_capacity);
  failures += check(b.queue_high_water <= b.queue_capacity, "queue high water respects capacity");
  failures += check(b.frames_total + b.queue_shed == burst, "phase B accounted for every frame");
  failures += check(b.frames_total > 0, "worker processed at least some of the burst");

  // --- Phase C: multi-stream cluster under uneven live rates ---------------
  // Eight streams at three different frame rates share two replicas through
  // the micro-batching ServingCluster; the fastest-indexed stream stalls
  // halfway through (a dead camera). Arrival timestamps come from a fake
  // clock advanced once per round, but submission is live — workers batch
  // and process concurrently — so the phase asserts liveness: a stalled
  // stream must never hold other streams' frames past the gather window.
  // Also checked: exact per-stream accounting and the gather-wait bound.
  constexpr int64_t kCRounds = 64;
  constexpr int64_t kCStreams = 8;
  constexpr int64_t kCPeriodNs = 1 * kMs;      // clock advance per round
  constexpr int64_t kCWindowNs = 2 * kMs;      // gather window
  serving::ClusterConfig c_config;
  c_config.streams = kCStreams;
  c_config.replicas = 2;
  // 15 frames/round over two replicas: the busier replica fills 16 inside
  // one window (max-batch seals) while the other seals on the deadline —
  // both seal paths get exercised, plus flush seals from the final drain.
  c_config.max_batch = 16;
  c_config.gather_window_ns = kCWindowNs;
  c_config.supervisor.stage_budget_ns.fill(0);  // scheduling phase, not ladder
  c_config.supervisor.frame_budget_ns = 0;
  c_config.keep_results = false;

  std::printf("\nPhase C: %" PRId64 " uneven streams on 2 replicas, one stalls at round %"
              PRId64 "...\n",
              kCStreams, kCRounds / 2);
  const auto c_start = std::chrono::steady_clock::now();
  serving::FakeClock c_clock;
  serving::ServingCluster cluster(detector, steering, c_config, &c_clock);
  std::vector<int64_t> submitted(static_cast<size_t>(kCStreams), 0);
  std::vector<std::vector<int64_t>> submitted_through_round;  // per-stream, per round
  int64_t c_total = 0;
  bool c_live = true;
  const auto streams_caught_up = [&](const std::vector<int64_t>& due) {
    for (int64_t s = 0; s < kCStreams; ++s) {
      if (cluster.stream_health(s).frames_total < due[static_cast<size_t>(s)]) return false;
    }
    return true;
  };
  for (int64_t round = 0; round < kCRounds && c_live; ++round) {
    c_clock.advance_ns(kCPeriodNs);
    for (int64_t s = 0; s < kCStreams; ++s) {
      if (s == kCStreams - 1 && round >= kCRounds / 2) continue;  // camera died
      for (int64_t j = 0; j < s % 3 + 1; ++j) {  // 1/2/3 frames per round
        cluster.submit(s, pool[static_cast<size_t>((s * 37 + c_total) % pool.size())]);
        ++submitted[static_cast<size_t>(s)];
        ++c_total;
      }
    }
    submitted_through_round.push_back(submitted);
    if (round < 4) continue;
    // Every stream's frames from four rounds ago must be processed by now:
    // the window deadline is strict (seals fire on the clock advance AFTER
    // it passes) and a max-batch seal may leave a frame queued for one more
    // seal cycle. The check is per stream so one replica racing ahead
    // cannot mask the other lagging. Give the workers bounded real time to
    // clear the backlog; a timeout means the stalled stream (or anything
    // else) wedged cross-stream progress.
    const std::vector<int64_t>& due = submitted_through_round[static_cast<size_t>(round - 4)];
    const auto wait_start = std::chrono::steady_clock::now();
    while (!streams_caught_up(due) && elapsed_ms(wait_start) < 5000.0) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    if (!streams_caught_up(due)) {
      failures += check(false, "phase C: stalled stream blocked cross-stream progress");
      c_live = false;
    }
  }
  cluster.drain();
  const serving::ClusterStats c_stats = cluster.stats();
  const double c_ms = elapsed_ms(c_start);

  std::printf("  %.0f ms, %" PRId64 " frames in %" PRId64 " batches (seals: %" PRId64
              " window, %" PRId64 " max-batch, %" PRId64 " flush), worst gather wait %.2f ms\n",
              c_ms, c_stats.batched_frames, c_stats.batches, c_stats.window_seals,
              c_stats.max_batch_seals, c_stats.flush_seals,
              static_cast<double>(c_stats.max_gather_wait_ns) / 1e6);
  failures += check(c_stats.batched_frames == c_total, "phase C processed every frame");
  int64_t c_shed_sum = 0;
  for (int64_t s = 0; s < kCStreams; ++s) {
    const serving::HealthSnapshot health = cluster.stream_health(s);
    const int64_t shed_s = cluster.shed_for_stream(s);
    c_shed_sum += shed_s;
    // Per-stream conservation: every submitted frame is either served or
    // named in that stream's own shed counter (admission control is off
    // here, so shed must be zero — but the identity is the invariant).
    if (health.frames_total + shed_s != submitted[static_cast<size_t>(s)]) {
      std::fprintf(stderr,
                   "SOAK FAILURE: phase C stream %" PRId64 " accounted %" PRId64 " + %" PRId64
                   " shed of %" PRId64 " frames\n",
                   s, health.frames_total, shed_s, submitted[static_cast<size_t>(s)]);
      ++failures;
    }
  }
  failures += check(c_shed_sum == c_stats.shed_frames,
                    "phase C: per-stream shed counters sum to the aggregate");
  failures += check(c_stats.window_seals >= 1,
                    "phase C: uneven rates produced window-deadline seals");
  // Gather-wait bound: a frame submitted at round x must be processed
  // before the liveness guard releases round x+4's successor, i.e. before
  // the clock reaches x+5 — so no frame can wait more than the window plus
  // two periods, no matter how slow the workers run in real time.
  failures += check(c_stats.max_gather_wait_ns <= kCWindowNs + 2 * kCPeriodNs,
                    "phase C: no frame waited past the gather window bound");
  cluster.stop();

  // --- Phase D: seeded chaos — kill/restore replicas under uneven live load
  // Eight streams at 1/2/3 frames per round on three replicas, with a
  // deterministic fault schedule running underneath: replica 0 crashes, then
  // has its weights bit-flipped; replica 1 hard-hangs; replica 2 runs slow
  // enough to miss every batch deadline. The watchdog quarantines each
  // faulted replica, fails streams over to survivors, and restores via
  // half-open probes once the windows close. Admission credits bound each
  // stream's pending backlog, shedding oldest-first. Gates: zero lost frames
  // beyond the per-stream shed counters, bounded per-stream staleness (the
  // same liveness guard as phase C, with slack for quarantine detection),
  // and the quarantine/restore cycle actually happening.
  constexpr int64_t kDStreams = 8;
  constexpr int64_t kDReplicas = 3;
  // 15 frames per round (streams at 1/2/3 each); round up so the default
  // 10k-frame run drives at least 10k chaos frames end to end.
  const int64_t d_rounds = std::max<int64_t>(64, (frames + 14) / 15);
  const int64_t d_dur = d_rounds * kCPeriodNs;
  // Every fault starts at d/4 or later: the staleness guard below only
  // begins pacing the driver at round 8, and a fault that lands inside the
  // initial unpaced burst freezes fake time before the watchdog's
  // quarantine horizon (fault start + missed * deadline) can be reached.
  faults::ReplicaFaultSchedule d_faults;
  d_faults.add({0, faults::ReplicaFaultKind::kCrash, d_dur / 4, 3 * d_dur / 8});
  d_faults.add({2, faults::ReplicaFaultKind::kSlow, 3 * d_dur / 8, 5 * d_dur / 8,
                /*slow_penalty_ns=*/20 * kMs});
  d_faults.add({1, faults::ReplicaFaultKind::kHang, d_dur / 2, 3 * d_dur / 4});
  d_faults.add({0, faults::ReplicaFaultKind::kWeightCorrupt, 5 * d_dur / 8, 2 * d_dur,
                /*slow_penalty_ns=*/0, /*weight_bits=*/64, /*seed=*/5});

  serving::ClusterConfig d_config;
  d_config.streams = kDStreams;
  d_config.replicas = kDReplicas;
  d_config.max_batch = 16;
  d_config.gather_window_ns = kCWindowNs;
  d_config.supervisor.stage_budget_ns.fill(0);
  d_config.supervisor.frame_budget_ns = 0;
  d_config.keep_results = false;
  d_config.watchdog.enabled = true;
  d_config.watchdog.batch_deadline_ns = 2 * kMs;
  d_config.watchdog.missed_deadlines_to_quarantine = 2;
  d_config.watchdog.probe_backoff_ns = 4 * kMs;
  d_config.watchdog.max_probe_backoff_ns = 32 * kMs;
  d_config.replica_faults = &d_faults;
  // Wide enough that a healthy, paced stream never hits the bound (the
  // staleness guard holds the driver ~16 rounds back at most, i.e. <= 48
  // pending on the busiest streams), tight enough that an outage pileup on
  // a 3-frames/round stream sheds visibly before quarantine migration.
  d_config.admission_credits = 24;
  d_config.sleep_on_slow = false;  // FakeClock is shared across replicas

  std::printf("\nPhase D: seeded chaos, %" PRId64 " uneven streams on %" PRId64
              " replicas over %" PRId64 " rounds (crash + hang + slow + weight-corruption)...\n",
              kDStreams, kDReplicas, d_rounds);
  const auto d_start = std::chrono::steady_clock::now();
  serving::FakeClock d_clock;
  serving::ServingCluster d_cluster(detector, steering, d_config, &d_clock);
  std::vector<int64_t> d_submitted(static_cast<size_t>(kDStreams), 0);
  std::vector<std::vector<int64_t>> d_due_by_round;
  int64_t d_total = 0;
  bool d_live = true;
  const auto d_caught_up = [&](const std::vector<int64_t>& due) {
    for (int64_t s = 0; s < kDStreams; ++s) {
      // Shed frames never get served; they count as resolved.
      if (d_cluster.stream_health(s).frames_total + d_cluster.shed_for_stream(s) <
          due[static_cast<size_t>(s)]) {
        return false;
      }
    }
    return true;
  };
  for (int64_t round = 0; round < d_rounds && d_live; ++round) {
    d_clock.advance_ns(kCPeriodNs);
    for (int64_t s = 0; s < kDStreams; ++s) {
      for (int64_t j = 0; j < s % 3 + 1; ++j) {
        d_cluster.submit(s, pool[static_cast<size_t>((s * 41 + d_total) % pool.size())]);
        ++d_submitted[static_cast<size_t>(s)];
        ++d_total;
      }
    }
    d_due_by_round.push_back(d_submitted);
    if (round < 8) continue;
    // Bounded staleness: frames from 8 rounds ago must be served (or shed)
    // by now. Eight rounds of fake time cover the worst recovery chain —
    // missed-deadline accrual (2 x 2 ms), the quarantine tick, and the
    // migration of the replica's backlog — all of which fire on submit
    // ticks that precede this check (seals themselves need future clock
    // advances, so the lag cannot shrink below the gather window). The
    // real-time wait covers worker scheduling lag, and the round-by-round
    // check also paces the driver, so the backlog (and any shedding)
    // reflects injected outages, not submission speed.
    const std::vector<int64_t>& due = d_due_by_round[static_cast<size_t>(round - 8)];
    const auto wait_start = std::chrono::steady_clock::now();
    int64_t extra_ms = 0;
    while (!d_caught_up(due) && elapsed_ms(wait_start) < 5000.0) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      // A stalled catch-up means frames are stranded behind a fault the
      // watchdog has not yet charged past its quarantine horizon — and the
      // watchdog only advances on submits, which this wait is withholding.
      // The source pausing does not stop wall time: keep fake time flowing
      // (bounded) and tick the cluster so quarantine -> migration can fire.
      if (extra_ms < 8 && elapsed_ms(wait_start) > 2.0 * static_cast<double>(extra_ms + 1)) {
        d_clock.advance_ns(kMs);
        d_cluster.tick();
        ++extra_ms;
      }
    }
    if (!d_caught_up(due)) {
      failures += check(false, "phase D: chaos blocked per-stream progress past the bound");
      d_live = false;
    }
  }
  d_cluster.drain();
  const serving::ClusterStats d_stats = d_cluster.stats();
  const double d_ms = elapsed_ms(d_start);

  std::printf("  %.0f ms, %" PRId64 " frames (%" PRId64 " batched, %" PRId64 " inline, %" PRId64
              " shed), quarantines %" PRId64 ", probes %" PRId64 " (%" PRId64
              " failed), restores %" PRId64 ", failovers %" PRId64 ", redispatched %" PRId64 "\n",
              d_ms, d_total, d_stats.batched_frames, d_stats.fallback_frames, d_stats.shed_frames,
              d_stats.quarantines, d_stats.probe_attempts, d_stats.probe_failures,
              d_stats.restores, d_stats.failovers, d_stats.redispatched_frames);
  int64_t d_shed_sum = 0;
  for (int64_t s = 0; s < kDStreams; ++s) {
    const serving::HealthSnapshot health = d_cluster.stream_health(s);
    const int64_t shed_s = d_cluster.shed_for_stream(s);
    d_shed_sum += shed_s;
    if (health.frames_total + shed_s != d_submitted[static_cast<size_t>(s)]) {
      std::fprintf(stderr,
                   "SOAK FAILURE: phase D stream %" PRId64 " accounted %" PRId64 " + %" PRId64
                   " shed of %" PRId64 " frames\n",
                   s, health.frames_total, shed_s, d_submitted[static_cast<size_t>(s)]);
      ++failures;
    }
    failures += check(health.frames_total > 0, "phase D: every stream made progress");
  }
  failures += check(d_shed_sum == d_stats.shed_frames,
                    "phase D: per-stream shed counters sum to the aggregate");
  failures += check(d_stats.batched_frames + d_stats.fallback_frames + d_stats.shed_frames ==
                        d_total,
                    "phase D: zero frames lost beyond the shed policy");
  failures += check(d_stats.quarantines >= 3,
                    "phase D: crash, hang, and slow replicas were all quarantined");
  failures += check(d_stats.restores >= 2, "phase D: quarantined replicas were restored");
  failures += check(d_stats.probe_attempts >= d_stats.restores,
                    "phase D: restores came through half-open probes");
  d_cluster.stop();

  // --- Phase D trace gate: the same chaos shape, recorded and replayed ----
  // A staged (paused-submission) run of the chaos schedule is recorded as a
  // format-v4 trace and must replay bit-exactly at 1 and 4 worker threads —
  // quarantines, probes, failovers, and every per-frame score included.
  trace::TraceRunSpec d_spec;
  d_spec.dataset = "outdoor";
  d_spec.frame_seed = 2024;
  d_spec.fault_seed = 7;
  d_spec.frames = std::max<int64_t>(25, frames / 8);  // per stream
  d_spec.height = detector.config().height;
  d_spec.width = detector.config().width;
  d_spec.supervisor.stage_budget_ns.fill(0);
  d_spec.supervisor.frame_budget_ns = 0;
  d_spec.cluster.streams = kDStreams;
  d_spec.cluster.replicas = kDReplicas;
  d_spec.cluster.gather_window_ns = kCWindowNs;
  d_spec.cluster.max_batch = 16;
  d_spec.cluster.arrival_period_ns = kCPeriodNs;
  d_spec.cluster.watchdog = d_config.watchdog;
  d_spec.cluster.admission_credits = 0;  // staged runs never drain mid-round
  const int64_t t_dur = d_spec.frames * kCPeriodNs;
  d_spec.cluster.replica_faults.push_back(
      {0, faults::ReplicaFaultKind::kCrash, t_dur / 8, 3 * t_dur / 8});
  d_spec.cluster.replica_faults.push_back(
      {2, faults::ReplicaFaultKind::kSlow, t_dur / 4, 5 * t_dur / 8, 20 * kMs});
  d_spec.cluster.replica_faults.push_back(
      {1, faults::ReplicaFaultKind::kHang, t_dur / 2, 3 * t_dur / 4});
  d_spec.cluster.replica_faults.push_back(
      {0, faults::ReplicaFaultKind::kWeightCorrupt, 5 * t_dur / 8, 2 * t_dur, 0, 64, 5});

  std::printf("\nPhase D trace gate: recording %" PRId64 " x %" PRId64
              " chaos frames, replaying at 1 and 4 threads...\n",
              static_cast<int64_t>(kDStreams), d_spec.frames);
  const auto t_start = std::chrono::steady_clock::now();
  const trace::Trace d_trace = trace::TraceRecorder::record(d_spec, detector, steering);
  failures += check(static_cast<int64_t>(d_trace.frames.size()) == kDStreams * d_spec.frames,
                    "phase D trace: every frame recorded (none lost or shed)");
  failures += check(d_trace.cluster_health.quarantines >= 3,
                    "phase D trace: chaos quarantined all three faulted replicas");
  failures += check(d_trace.cluster_health.restores >= 2,
                    "phase D trace: quarantined replicas restored via probe");
  failures += check(!d_trace.events.empty(), "phase D trace: event log captured");
  double replay_ms[2] = {0.0, 0.0};
  {
    int slot = 0;
    for (const int threads : {1, 4}) {
      parallel::set_num_threads(threads);
      const auto r_start = std::chrono::steady_clock::now();
      const trace::ReplayReport report =
          trace::TraceReplayer::replay(d_trace, detector, steering);
      replay_ms[slot++] = elapsed_ms(r_start);
      if (!report.ok()) {
        std::fprintf(stderr, "SOAK FAILURE: phase D trace replay at %d threads: %s\n", threads,
                     report.format().c_str());
        ++failures;
      }
    }
    parallel::set_num_threads(0);
  }
  const double t_ms = elapsed_ms(t_start);
  std::printf("  %.0f ms total (replays %.0f / %.0f ms), %zu events, quarantines %" PRId64
              ", restores %" PRId64 ", failovers %" PRId64 "\n",
              t_ms, replay_ms[0], replay_ms[1], d_trace.events.size(),
              d_trace.cluster_health.quarantines, d_trace.cluster_health.restores,
              d_trace.cluster_health.failovers);

  std::ofstream json("BENCH_serving.json");
  json << "{\n  \"phase_a\": {\"frames\": " << frames << ", \"elapsed_ms\": " << a_ms
       << ", \"deadline_overruns\": " << a.deadline_overruns
       << ", \"step_downs\": " << a.step_downs << ", \"promotions\": " << a.promotions
       << ", \"breaker_trips\": " << a.breaker_trips
       << ", \"probe_successes\": " << a.probe_successes << ", \"final_mode\": \""
       << serving::serving_mode_name(a.mode) << "\", \"saliency_p99_ns\": "
       << a.stages[static_cast<size_t>(serving::Stage::kSaliency)].p99_ns << "},\n"
       << "  \"phase_b\": {\"frames_submitted\": " << burst
       << ", \"frames_processed\": " << b.frames_total << ", \"shed\": " << b.queue_shed
       << ", \"queue_high_water\": " << b.queue_high_water
       << ", \"queue_capacity\": " << b.queue_capacity << ", \"elapsed_ms\": " << b_ms << "},\n"
       << "  \"phase_c\": {\"streams\": " << kCStreams << ", \"rounds\": " << kCRounds
       << ", \"frames\": " << c_stats.batched_frames << ", \"batches\": " << c_stats.batches
       << ", \"window_seals\": " << c_stats.window_seals
       << ", \"max_batch_seals\": " << c_stats.max_batch_seals
       << ", \"flush_seals\": " << c_stats.flush_seals
       << ", \"max_gather_wait_ns\": " << c_stats.max_gather_wait_ns
       << ", \"elapsed_ms\": " << c_ms << "},\n"
       << "  \"phase_d\": {\"streams\": " << kDStreams << ", \"replicas\": " << kDReplicas
       << ", \"rounds\": " << d_rounds << ", \"frames\": " << d_total
       << ", \"batched_frames\": " << d_stats.batched_frames
       << ", \"fallback_frames\": " << d_stats.fallback_frames
       << ", \"shed_frames\": " << d_stats.shed_frames
       << ", \"quarantines\": " << d_stats.quarantines
       << ", \"probe_attempts\": " << d_stats.probe_attempts
       << ", \"probe_failures\": " << d_stats.probe_failures
       << ", \"restores\": " << d_stats.restores << ", \"failovers\": " << d_stats.failovers
       << ", \"redispatched_frames\": " << d_stats.redispatched_frames
       << ", \"elapsed_ms\": " << d_ms
       << ", \"trace_frames\": " << d_trace.frames.size()
       << ", \"trace_events\": " << d_trace.events.size()
       << ", \"trace_replay_1t_ms\": " << replay_ms[0]
       << ", \"trace_replay_4t_ms\": " << replay_ms[1] << "}\n}\n";
  std::printf("\nwrote BENCH_serving.json\n");

  if (failures > 0) {
    std::fprintf(stderr, "%d soak invariant(s) violated\n", failures);
    return 1;
  }
  std::printf("all soak invariants held\n");
  return 0;
}

}  // namespace salnov::bench

int main(int argc, char** argv) {
  int64_t frames = 10'000;
  if (argc > 1) frames = std::atoll(argv[1]);
  if (frames < 200) {
    std::fprintf(stderr, "bench_serving_soak: frame count must be >= 200 (got %" PRId64 ")\n",
                 frames);
    return 2;
  }
  return salnov::bench::run(frames);
}
