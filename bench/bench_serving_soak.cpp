// Serving-runtime soak: long-haul robustness of the supervisor + server.
//
// Phase A streams frames synchronously through a Supervisor under a fake
// clock with a deterministic stall schedule — periodic saliency spikes, one
// consecutive-failure episode that trips the circuit breaker, and one
// sustained reconstruct stall that walks the ladder all the way to sensor
// hold. The run asserts the runtime reacted (trip + probe restore, step-downs
// and promotions, final mode back at the top) and every frame is accounted
// for. Phase B bursts frames at a ServingServer faster than the worker can
// drain them, asserting the bounded queue sheds instead of growing and the
// high-water mark respects the capacity. Phase C drives eight live streams
// at uneven rates through a micro-batching ServingCluster with one stream
// stalling mid-run, asserting a dead camera never holds other streams'
// frames past the gather window (no cross-stream head-of-line blocking) and
// per-stream accounting stays exact.
//
// Frame count is argv[1] (default 10000, minimum 200); CI smoke passes a
// small count. Phase C runs a fixed 64 rounds regardless of the frame
// count. Emits BENCH_serving.json for trend tracking.
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "faults/timing_faults.hpp"
#include "serving/cluster.hpp"
#include "serving/server.hpp"
#include "serving/supervisor.hpp"

namespace salnov::bench {
namespace {

constexpr uint64_t kDetectorSeed = 5;
constexpr int64_t kMs = 1'000'000;

double elapsed_ms(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

int check(bool ok, const char* what) {
  if (!ok) std::fprintf(stderr, "SOAK FAILURE: %s\n", what);
  return ok ? 0 : 1;
}

}  // namespace

int run(int64_t frames) {
  print_header("Serving soak",
               "Supervisor under a deterministic stall schedule (fake clock), then a burst\n"
               "through the bounded-queue ServingServer. Asserts the degraded-mode ladder,\n"
               "breaker, and shedding all engage and recover.");

  Env& env = environment();
  DetectorHandle handle = fit_or_load_detector(
      env, bench_detector_config(core::Preprocessing::kVbp, core::ReconstructionScore::kSsim),
      kDetectorSeed);
  const core::NoveltyDetector& detector = *handle.detector;
  nn::Sequential* steering = handle.steering ? handle.steering.get() : &env.steering;
  const std::vector<Image>& pool = env.outdoor_test.images();

  // --- Phase A: deterministic soak under the fake clock --------------------
  // Only injected stalls advance time, so the overrun/ladder/breaker trace
  // depends solely on the schedule below, not on machine speed.
  faults::TimingFaultInjector stalls;
  {
    faults::TimingFault spike;  // isolated saliency spikes, absorbed (demote_after = 2)
    spike.stage = static_cast<int>(serving::Stage::kSaliency);
    spike.stall_ns = 60 * kMs;
    spike.period = 97;
    stalls.add(spike);

    faults::TimingFault episode;  // consecutive failures: trips the breaker
    episode.stage = static_cast<int>(serving::Stage::kSaliency);
    episode.stall_ns = 60 * kMs;
    episode.first_frame = frames / 10;
    episode.last_frame = frames / 10 + 4;
    stalls.add(episode);

    faults::TimingFault outage;  // hits every rung: ladder descends to sensor hold
    outage.stage = static_cast<int>(serving::Stage::kReconstruct);
    outage.stall_ns = 30 * kMs;
    outage.first_frame = frames / 2;
    outage.last_frame = frames / 2 + 19;
    stalls.add(outage);
  }

  serving::SupervisorConfig config;
  config.timing_faults = &stalls;
  config.demote_after_bad_frames = 2;  // absorb isolated spikes, react to episodes
  serving::FakeClock clock;
  serving::Supervisor supervisor(detector, steering, config, &clock);

  std::printf("\nPhase A: %" PRId64 " frames, periodic spikes + breaker episode + outage...\n",
              frames);
  const auto a_start = std::chrono::steady_clock::now();
  for (int64_t i = 0; i < frames; ++i) {
    supervisor.process(pool[static_cast<size_t>(i) % pool.size()]);
  }
  const double a_ms = elapsed_ms(a_start);
  const serving::HealthSnapshot a = supervisor.health();

  std::printf("  %.0f ms (%.1f frames/s), final mode %s, breaker %s\n", a_ms,
              1000.0 * static_cast<double>(frames) / a_ms, serving::serving_mode_name(a.mode),
              serving::breaker_state_name(a.breaker_state));
  std::printf("  overruns %" PRId64 ", step-downs %" PRId64 ", promotions %" PRId64
              ", trips %" PRId64 ", probe ok/fail %" PRId64 "/%" PRId64 "\n",
              a.deadline_overruns, a.step_downs, a.promotions, a.breaker_trips, a.probe_successes,
              a.probe_failures);

  int failures = 0;
  failures += check(a.frames_total == frames, "phase A processed every frame");
  failures += check(a.frames_scored + a.frames_held + a.frames_abandoned + a.frames_sensor_bad ==
                        frames,
                    "phase A accounted for every frame");
  failures += check(a.deadline_overruns > 0, "stalls produced overruns");
  failures += check(a.breaker_trips >= 1, "breaker tripped on the episode");
  failures += check(a.probe_successes >= 1, "half-open probe restored saliency");
  failures += check(a.step_downs >= 5, "ladder stepped down through the outage");
  failures += check(a.promotions >= 2, "ladder climbed back after recovery");
  failures += check(a.mode == serving::ServingMode::kVbpSsim, "soak ends at the top rung");

  // --- Phase B: burst shedding through the bounded queue -------------------
  const int64_t burst = frames < 512 ? frames : frames / 8;
  serving::SupervisorConfig rt_config;  // real clock, generous budgets
  rt_config.stage_budget_ns.fill(0);    // latency rings only; no degradation
  rt_config.frame_budget_ns = 0;
  serving::Supervisor rt_supervisor(detector, steering, rt_config);
  serving::ServerConfig server_config;
  server_config.queue_capacity = 16;
  server_config.keep_results = false;

  std::printf("\nPhase B: bursting %" PRId64 " frames at a queue of %zu...\n", burst,
              server_config.queue_capacity);
  const auto b_start = std::chrono::steady_clock::now();
  serving::HealthSnapshot b;
  {
    serving::ServingServer server(rt_supervisor, server_config);
    for (int64_t i = 0; i < burst; ++i) {
      server.submit(pool[static_cast<size_t>(i) % pool.size()]);
    }
    server.stop();
    b = server.health();
  }
  const double b_ms = elapsed_ms(b_start);

  std::printf("  %.0f ms, processed %" PRId64 ", shed %" PRId64 ", high water %" PRId64 "/%"
              PRId64 "\n",
              b_ms, b.frames_total, b.queue_shed, b.queue_high_water, b.queue_capacity);
  failures += check(b.queue_high_water <= b.queue_capacity, "queue high water respects capacity");
  failures += check(b.frames_total + b.queue_shed == burst, "phase B accounted for every frame");
  failures += check(b.frames_total > 0, "worker processed at least some of the burst");

  // --- Phase C: multi-stream cluster under uneven live rates ---------------
  // Eight streams at three different frame rates share two replicas through
  // the micro-batching ServingCluster; the fastest-indexed stream stalls
  // halfway through (a dead camera). Arrival timestamps come from a fake
  // clock advanced once per round, but submission is live — workers batch
  // and process concurrently — so the phase asserts liveness: a stalled
  // stream must never hold other streams' frames past the gather window.
  // Also checked: exact per-stream accounting and the gather-wait bound.
  constexpr int64_t kCRounds = 64;
  constexpr int64_t kCStreams = 8;
  constexpr int64_t kCPeriodNs = 1 * kMs;      // clock advance per round
  constexpr int64_t kCWindowNs = 2 * kMs;      // gather window
  serving::ClusterConfig c_config;
  c_config.streams = kCStreams;
  c_config.replicas = 2;
  // 15 frames/round over two replicas: the busier replica fills 16 inside
  // one window (max-batch seals) while the other seals on the deadline —
  // both seal paths get exercised, plus flush seals from the final drain.
  c_config.max_batch = 16;
  c_config.gather_window_ns = kCWindowNs;
  c_config.supervisor.stage_budget_ns.fill(0);  // scheduling phase, not ladder
  c_config.supervisor.frame_budget_ns = 0;
  c_config.keep_results = false;

  std::printf("\nPhase C: %" PRId64 " uneven streams on 2 replicas, one stalls at round %"
              PRId64 "...\n",
              kCStreams, kCRounds / 2);
  const auto c_start = std::chrono::steady_clock::now();
  serving::FakeClock c_clock;
  serving::ServingCluster cluster(detector, steering, c_config, &c_clock);
  std::vector<int64_t> submitted(static_cast<size_t>(kCStreams), 0);
  std::vector<std::vector<int64_t>> submitted_through_round;  // per-stream, per round
  int64_t c_total = 0;
  bool c_live = true;
  const auto streams_caught_up = [&](const std::vector<int64_t>& due) {
    for (int64_t s = 0; s < kCStreams; ++s) {
      if (cluster.stream_health(s).frames_total < due[static_cast<size_t>(s)]) return false;
    }
    return true;
  };
  for (int64_t round = 0; round < kCRounds && c_live; ++round) {
    c_clock.advance_ns(kCPeriodNs);
    for (int64_t s = 0; s < kCStreams; ++s) {
      if (s == kCStreams - 1 && round >= kCRounds / 2) continue;  // camera died
      for (int64_t j = 0; j < s % 3 + 1; ++j) {  // 1/2/3 frames per round
        cluster.submit(s, pool[static_cast<size_t>((s * 37 + c_total) % pool.size())]);
        ++submitted[static_cast<size_t>(s)];
        ++c_total;
      }
    }
    submitted_through_round.push_back(submitted);
    if (round < 4) continue;
    // Every stream's frames from four rounds ago must be processed by now:
    // the window deadline is strict (seals fire on the clock advance AFTER
    // it passes) and a max-batch seal may leave a frame queued for one more
    // seal cycle. The check is per stream so one replica racing ahead
    // cannot mask the other lagging. Give the workers bounded real time to
    // clear the backlog; a timeout means the stalled stream (or anything
    // else) wedged cross-stream progress.
    const std::vector<int64_t>& due = submitted_through_round[static_cast<size_t>(round - 4)];
    const auto wait_start = std::chrono::steady_clock::now();
    while (!streams_caught_up(due) && elapsed_ms(wait_start) < 5000.0) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    if (!streams_caught_up(due)) {
      failures += check(false, "phase C: stalled stream blocked cross-stream progress");
      c_live = false;
    }
  }
  cluster.drain();
  const serving::ClusterStats c_stats = cluster.stats();
  const double c_ms = elapsed_ms(c_start);

  std::printf("  %.0f ms, %" PRId64 " frames in %" PRId64 " batches (seals: %" PRId64
              " window, %" PRId64 " max-batch, %" PRId64 " flush), worst gather wait %.2f ms\n",
              c_ms, c_stats.batched_frames, c_stats.batches, c_stats.window_seals,
              c_stats.max_batch_seals, c_stats.flush_seals,
              static_cast<double>(c_stats.max_gather_wait_ns) / 1e6);
  failures += check(c_stats.batched_frames == c_total, "phase C processed every frame");
  for (int64_t s = 0; s < kCStreams; ++s) {
    const serving::HealthSnapshot health = cluster.stream_health(s);
    if (health.frames_total != submitted[static_cast<size_t>(s)]) {
      std::fprintf(stderr,
                   "SOAK FAILURE: phase C stream %" PRId64 " accounted %" PRId64 "/%" PRId64
                   " frames\n",
                   s, health.frames_total, submitted[static_cast<size_t>(s)]);
      ++failures;
    }
  }
  failures += check(c_stats.window_seals >= 1,
                    "phase C: uneven rates produced window-deadline seals");
  // Gather-wait bound: a frame submitted at round x must be processed
  // before the liveness guard releases round x+4's successor, i.e. before
  // the clock reaches x+5 — so no frame can wait more than the window plus
  // two periods, no matter how slow the workers run in real time.
  failures += check(c_stats.max_gather_wait_ns <= kCWindowNs + 2 * kCPeriodNs,
                    "phase C: no frame waited past the gather window bound");
  cluster.stop();

  std::ofstream json("BENCH_serving.json");
  json << "{\n  \"phase_a\": {\"frames\": " << frames << ", \"elapsed_ms\": " << a_ms
       << ", \"deadline_overruns\": " << a.deadline_overruns
       << ", \"step_downs\": " << a.step_downs << ", \"promotions\": " << a.promotions
       << ", \"breaker_trips\": " << a.breaker_trips
       << ", \"probe_successes\": " << a.probe_successes << ", \"final_mode\": \""
       << serving::serving_mode_name(a.mode) << "\", \"saliency_p99_ns\": "
       << a.stages[static_cast<size_t>(serving::Stage::kSaliency)].p99_ns << "},\n"
       << "  \"phase_b\": {\"frames_submitted\": " << burst
       << ", \"frames_processed\": " << b.frames_total << ", \"shed\": " << b.queue_shed
       << ", \"queue_high_water\": " << b.queue_high_water
       << ", \"queue_capacity\": " << b.queue_capacity << ", \"elapsed_ms\": " << b_ms << "},\n"
       << "  \"phase_c\": {\"streams\": " << kCStreams << ", \"rounds\": " << kCRounds
       << ", \"frames\": " << c_stats.batched_frames << ", \"batches\": " << c_stats.batches
       << ", \"window_seals\": " << c_stats.window_seals
       << ", \"max_batch_seals\": " << c_stats.max_batch_seals
       << ", \"flush_seals\": " << c_stats.flush_seals
       << ", \"max_gather_wait_ns\": " << c_stats.max_gather_wait_ns
       << ", \"elapsed_ms\": " << c_ms << "}\n}\n";
  std::printf("\nwrote BENCH_serving.json\n");

  if (failures > 0) {
    std::fprintf(stderr, "%d soak invariant(s) violated\n", failures);
    return 1;
  }
  std::printf("all soak invariants held\n");
  return 0;
}

}  // namespace salnov::bench

int main(int argc, char** argv) {
  int64_t frames = 10'000;
  if (argc > 1) frames = std::atoll(argv[1]);
  if (frames < 200) {
    std::fprintf(stderr, "bench_serving_soak: frame count must be >= 200 (got %" PRId64 ")\n",
                 frames);
    return 2;
  }
  return salnov::bench::run(frames);
}
