// Parallel scaling baseline for the runtime monitor's classify path.
//
// The paper motivates VisualBackProp as a real-time saliency method, and the
// roadmap's north star is a monitor that scores every camera frame as fast
// as the hardware allows. This bench measures end-to-end classify throughput
// (VBP mask -> autoencoder reconstruction -> SSIM score -> threshold test)
// of the batch scoring API at 1/2/4/N pool threads, verifies the scores are
// bit-identical at every thread count (the parallel layer's core guarantee),
// and records the series to bench_artifacts/parallel_scaling.csv so later
// PRs can compare against this baseline.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>
#include <vector>

#include "common.hpp"
#include "parallel/parallel_for.hpp"

namespace {

using namespace salnov;

struct ScalingPoint {
  int threads = 1;
  double frames_per_sec = 0.0;
  bool bit_identical = true;  ///< scores match the 1-thread run exactly
};

double time_batch_fps(const core::NoveltyDetector& detector, const std::vector<Image>& frames,
                      std::vector<double>& scores_out, int repeats) {
  detector.scores(frames);  // warm-up (first call may grow the pool)
  double best_fps = 0.0;
  for (int r = 0; r < repeats; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<double> scores = detector.scores(frames);
    const auto t1 = std::chrono::steady_clock::now();
    const double seconds =
        std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0).count();
    best_fps = std::max(best_fps, static_cast<double>(frames.size()) / seconds);
    scores_out = std::move(scores);
  }
  return best_fps;
}

}  // namespace

int main() {
  bench::print_header("Parallel scaling — classify-path throughput vs pool threads",
                      "Frames/sec of NoveltyDetector::scores (VBP -> AE -> SSIM) at "
                      "1/2/4/N threads; scores must be bit-identical at every count.");

  bench::Env& env = bench::environment();
  bench::DetectorHandle handle = bench::fit_or_load_detector(
      env, bench::bench_detector_config(core::Preprocessing::kVbp, core::ReconstructionScore::kSsim),
      /*seed=*/101);
  const core::NoveltyDetector& detector = *handle.detector;

  std::vector<Image> frames;
  for (int64_t i = 0; i < env.outdoor_test.size(); ++i) frames.push_back(env.outdoor_test.image(i));

  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  std::vector<int> thread_counts = {1, 2, 4};
  if (hw > 4) thread_counts.push_back(hw);

  std::vector<double> reference_scores;
  std::vector<ScalingPoint> points;
  for (int threads : thread_counts) {
    parallel::set_num_threads(threads);
    ScalingPoint point;
    point.threads = threads;
    std::vector<double> scores;
    point.frames_per_sec = time_batch_fps(detector, frames, scores, 3);
    if (threads == 1) {
      reference_scores = scores;
    } else {
      point.bit_identical = scores == reference_scores;
    }
    points.push_back(point);
  }
  parallel::set_num_threads(0);  // back to automatic resolution

  const double base_fps = points.front().frames_per_sec;
  std::printf("\n%ld frames/batch, hardware threads: %d\n\n", static_cast<long>(frames.size()), hw);
  std::printf("  %8s %16s %10s %15s\n", "threads", "frames/sec", "speedup", "bit-identical");
  bool all_identical = true;
  for (const ScalingPoint& point : points) {
    std::printf("  %8d %16.1f %9.2fx %15s\n", point.threads, point.frames_per_sec,
                point.frames_per_sec / base_fps, point.bit_identical ? "yes" : "NO");
    all_identical = all_identical && point.bit_identical;
  }

  const std::string csv_path = bench::artifact_dir() + "/parallel_scaling.csv";
  std::ofstream csv(csv_path);
  csv << "threads,frames_per_sec,speedup,bit_identical\n";
  for (const ScalingPoint& point : points) {
    csv << point.threads << ',' << point.frames_per_sec << ','
        << point.frames_per_sec / base_fps << ',' << (point.bit_identical ? 1 : 0) << '\n';
  }
  std::printf("\nSeries recorded to %s\n", csv_path.c_str());

  if (hw <= 1) {
    std::printf("\nNOTE: this machine exposes a single hardware thread; speedups beyond\n"
                "1.0x require real cores. The determinism guarantee is what this run\n"
                "verifies — rerun on a multi-core host for the scaling series.\n");
  }
  if (!all_identical) {
    std::printf("\nFAIL: scores diverged across thread counts.\n");
    return 1;
  }
  std::printf("\nScores are bit-identical at every thread count.\n");
  return 0;
}
