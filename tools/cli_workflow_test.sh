#!/bin/sh
# End-to-end smoke test of the salnov CLI: generate -> train-steering ->
# fit -> classify -> saliency, asserting the novelty verdicts.
set -eu

CLI="$1"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

"$CLI" generate --out target --dataset outdoor --count 60 --height 30 --width 80 --seed 5
"$CLI" generate --out novel --dataset indoor --count 6 --height 30 --width 80 --seed 6
test -f target/labels.csv
test -f target/img00059.pgm

"$CLI" train-steering --data target --out steering.model --epochs 10
test -f steering.model

"$CLI" fit --data target --steering steering.model --out detector.pipeline --epochs 60
test -f detector.pipeline

OUT="$("$CLI" classify --pipeline detector.pipeline novel/img00000.pgm novel/img00001.pgm \
        novel/img00002.pgm target/img00000.pgm target/img00001.pgm)"
echo "$OUT"
# The three indoor images must be flagged; the two training images must not.
echo "$OUT" | grep -q "3/5 flagged novel"

"$CLI" saliency --steering steering.model --out sal target/img00002.pgm
test -f sal/img00002_mask.pgm
test -f sal/img00002_overlay.pgm

# Degraded-mode serving: a persistent saliency stall under the fake clock must
# step the ladder down to raw+MSE, report a nonzero overrun counter, and still
# exit 0 (the runtime absorbs the fault instead of failing).
SERVE="$("$CLI" serve --pipeline detector.pipeline --frames 40 --dataset outdoor \
        --seed 7 --fake-clock --stage-budget-ns 1000000 \
        --stall-stage 2 --stall-ns 5000000 --promote-after 100 \
        --health-out health.json)"
echo "$SERVE"
echo "$SERVE" | grep -q "final_mode=raw+mse"
echo "$SERVE" | grep -Eq "deadline_overruns=[1-9]"
echo "$SERVE" | grep -q '"name":"saliency","overruns":2'
test -f health.json
grep -q '"mode":"raw+mse"' health.json

# A healthy serve run stays at the top of the ladder with clean counters.
SERVE_OK="$("$CLI" serve --pipeline detector.pipeline --frames 20 --dataset outdoor \
        --seed 7 --fake-clock)"
echo "$SERVE_OK" | grep -q "final_mode=vbp+ssim"
echo "$SERVE_OK" | grep -q "deadline_overruns=0"

# Online calibration: a forced swap at frame 10 must install epoch 1
# deterministically, persist it to the threshold store, and surface the drift
# counters in the health JSON.
SWAP="$("$CLI" serve --pipeline detector.pipeline --frames 30 --dataset outdoor \
        --seed 7 --fake-clock --online-calib --force-swap-at 10 \
        --threshold-store thresholds.bin --health-out health_calib.json)"
echo "$SWAP"
echo "$SWAP" | grep -q "swap_event frame=10 epoch=1 reason=forced persisted=1"
echo "$SWAP" | grep -q "threshold_swaps=1"
test -f thresholds.bin
grep -q '"drift_checks"' health_calib.json
grep -q '"threshold_swaps":1' health_calib.json

# A restart with the same store recovers the persisted epoch before serving.
RECOVER="$("$CLI" serve --pipeline detector.pipeline --frames 5 --dataset outdoor \
        --seed 7 --fake-clock --online-calib --threshold-store thresholds.bin)"
echo "$RECOVER" | grep -q "recovered threshold store thresholds.bin (epoch 1)"

# Multi-stream cluster serving: two streams micro-batched under the fake
# clock must report one grep-able summary line per stream, account for every
# submitted frame, and actually batch (batches < batched_frames).
MULTI="$("$CLI" serve --pipeline detector.pipeline --frames 10 --dataset outdoor \
        --seed 7 --fake-clock --streams 2 --replicas 1 \
        --batch-window-us 4000 --arrival-us 1000 --max-batch 8)"
echo "$MULTI"
echo "$MULTI" | grep -q "stream=0 frames=10 scored=10"
echo "$MULTI" | grep -q "stream=1 frames=10 scored=10"
echo "$MULTI" | grep -q "streams=2"
echo "$MULTI" | grep -q "frames_total=20"
echo "$MULTI" | grep -q "batched_frames=20"
BATCHES="$(echo "$MULTI" | sed -n 's/^batches=//p')"
test "$BATCHES" -ge 1 && test "$BATCHES" -lt 20

# Replica failure domain: a crashed replica is quarantined by the watchdog,
# its streams fail over to the survivor, and a half-open probe restores it
# once the fault window closes. Every frame must still be served (no shed:
# admission control is off) and the failure-domain counters must be
# grep-able from the summary.
CHAOS="$("$CLI" serve --pipeline detector.pipeline --frames 10 --dataset outdoor \
        --seed 7 --fake-clock --streams 2 --replicas 2 \
        --batch-window-us 5000 --arrival-us 10000 --watchdog \
        --batch-deadline-us 5000 --missed-deadlines 2 --probe-backoff-us 8000 \
        --replica-fault 'crash:0:0:20000;slow:1:40000:65000:20000')"
echo "$CHAOS"
echo "$CHAOS" | grep -q "stream=0 frames=10 scored=10"
echo "$CHAOS" | grep -q "stream=1 frames=10 scored=10"
echo "$CHAOS" | grep -q "frames_total=20"
echo "$CHAOS" | grep -q "shed_frames=0"
echo "$CHAOS" | grep -Eq "quarantines=[1-9]"
echo "$CHAOS" | grep -Eq "restores=[1-9]"
echo "$CHAOS" | grep -Eq "failovers=[1-9]"
echo "$CHAOS" | grep -q "cluster_event kind=quarantine"
echo "$CHAOS" | grep -q "cluster_event kind=restore"

# The same failure domain records as a format-v4 trace and replays with an
# empty diff (the event log and failure-domain counters are part of it).
"$CLI" record --pipeline detector.pipeline --out chaos.trace --frames 6 \
        --dataset outdoor --frame-seed 9 --streams 2 --replicas 2 \
        --batch-window-us 5000 --arrival-us 10000 --watchdog \
        --batch-deadline-us 5000 --missed-deadlines 2 --probe-backoff-us 8000 \
        --replica-fault 'crash:0:0:20000'
REPLAY_CHAOS="$("$CLI" replay --pipeline detector.pipeline --trace chaos.trace --threads 2)"
echo "$REPLAY_CHAOS" | grep -q "replay conformant (12 frames)"

# A fault schedule without the fake clock is refused (the windows are
# offsets into fake time and would never activate on a wall clock).
if "$CLI" serve --pipeline detector.pipeline --frames 2 --streams 2 --replicas 2 \
        --watchdog --replica-fault 'crash:0:0:20000' 2>/dev/null; then
  echo "expected serve to reject --replica-fault without --fake-clock" >&2
  exit 1
fi

# A multi-stream recorded trace replays conformant too (stream routing and
# per-stream decisions are part of the diff).
"$CLI" record --pipeline detector.pipeline --out multi.trace --frames 6 \
        --dataset outdoor --frame-seed 9 --streams 3 --replicas 2 \
        --batch-window-us 2000 --arrival-us 1000
REPLAY_MULTI="$("$CLI" replay --pipeline detector.pipeline --trace multi.trace --threads 2)"
echo "$REPLAY_MULTI" | grep -q "replay conformant (18 frames)"

# Record/replay conformance round trip: a recorded trace replays with an
# empty diff (exit 0) at 1 and 4 threads; a replay against a different
# pipeline is refused via the CRC binding; a stale trace (re-recorded world)
# still replays because the spec pins every input.
"$CLI" record --pipeline detector.pipeline --out run.trace --frames 12 \
        --dataset outdoor --frame-seed 9 \
        --stall-stage 2 --stall-ns 5000000 --stall-first 3 --stall-last 6
test -f run.trace
REPLAY="$("$CLI" replay --pipeline detector.pipeline --trace run.trace --threads 1)"
echo "$REPLAY" | grep -q "replay conformant (12 frames)"
"$CLI" replay --pipeline detector.pipeline --trace run.trace --threads 4 \
        --report replay_report.txt
grep -q "replay conformant" replay_report.txt

# Replaying against the wrong pipeline must fail the CRC binding up front.
"$CLI" fit --data target --steering steering.model --out other.pipeline --epochs 20 --seed 9
if "$CLI" replay --pipeline other.pipeline --trace run.trace 2>/dev/null; then
  echo "expected replay to reject a mismatched pipeline" >&2
  exit 1
fi

# A truncated pipeline file must be rejected with a diagnostic, not crash.
head -c 100 detector.pipeline > truncated.pipeline
if ERR="$("$CLI" classify --pipeline truncated.pipeline target/img00000.pgm 2>&1)"; then
  echo "expected nonzero exit for truncated pipeline" >&2
  exit 1
fi
echo "$ERR" | grep -qi "salnov:" || { echo "missing diagnostic for truncated file" >&2; exit 1; }

# So must a pipeline with corrupted payload bytes (CRC trailer check).
# Writing 0xFF and 0x00 at adjacent offsets guarantees at least one byte
# actually changes, whatever the original contents.
cp detector.pipeline corrupt.pipeline
printf '\377\000' | dd of=corrupt.pipeline bs=1 seek=100 count=2 conv=notrunc 2>/dev/null
if ERR="$("$CLI" classify --pipeline corrupt.pipeline target/img00000.pgm 2>&1)"; then
  echo "expected nonzero exit for corrupted pipeline" >&2
  exit 1
fi
echo "$ERR" | grep -qi "salnov:" || { echo "missing diagnostic for corrupted file" >&2; exit 1; }

# Unknown command prints usage and exits nonzero.
if "$CLI" frobnicate 2>/dev/null; then
  echo "expected nonzero exit for unknown command" >&2
  exit 1
fi

echo "cli workflow ok"
