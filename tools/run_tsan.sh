#!/usr/bin/env bash
# Builds the test suite with ThreadSanitizer and runs the parallel-layer
# and serving-runtime tests — the frame queue, the server's worker /
# producer / snapshot threads, the multi-stream cluster's replica workers,
# the replica failure domain (watchdog, fault schedules, failover /
# chaos suites), and the quantized int8 rungs (thread-count bit-identity
# plus the int8 GEMM kernels) — (plus any extra ctest -R pattern passed
# as $1).
#
# Usage:
#   tools/run_tsan.sh              # run parallel_test under TSan
#   tools/run_tsan.sh 'Detector'   # run tests matching 'Detector' instead
#
# Uses a dedicated build tree (build-tsan) so the regular build stays warm.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=build-tsan
PATTERN="${1:-parallel_test|ParallelFor|GemmParallel|SsimParallel|DetectorParallel|DatasetParallel|FrameQueue|ServingFixture.Server|HotSwap|ClusterFixture|FailoverFixture|ReplicaWatchdog|ReplicaFaultSchedule|QuantDifferentialFixture|GemmInt8}"

cmake -B "$BUILD_DIR" -S . -DSALNOV_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)"

# second_deadlock_stack gives both stacks on lock-order reports.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"
ctest --test-dir "$BUILD_DIR" --output-on-failure -R "$PATTERN"
