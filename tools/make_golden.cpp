// make_golden — records the golden conformance traces under tests/golden/.
//
// Fits a small deterministic pipeline (scalar GEMM kernel, fixed seeds, tiny
// 16x24 autoencoder so the checked-in file stays small), records the five
// canonical scenarios — nominal, stall-ladder (breaker trip + probe
// recovery), sensor-fault (frozen camera, then salt-and-pepper novelty
// re-entry), multi-stream (three micro-batched streams on two replicas with
// a frozen-camera burst), replica-failover (format v4: a crashed replica
// quarantined and restored via half-open probe, a slow replica with a failed
// probe, and a weight-corruption window that withholds speculated compute) —
// and self-verifies every trace before writing it:
//
//   * replays bit-exactly at 1 and 4 worker threads under the scalar kernel;
//   * replays within the cross-kernel tolerance under SIMD when available;
//   * every scored frame's |score - threshold| margin is wide enough that a
//     differently-rounding GEMM kernel cannot flip a verdict.
//
// Usage: make_golden --out tests/golden [--only SCENARIO]
// Re-run it (and commit the result) whenever an intentional pipeline change
// invalidates the goldens; CI replays them on every push. --only records a
// single scenario, leaving the other checked-in traces untouched — older
// traces at earlier format versions deliberately stay as-is, so the replay
// job keeps exercising the loader's version gating.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "salnov.hpp"
#include "tensor/gemm.hpp"

namespace {

using namespace salnov;

constexpr int64_t kH = 16;
constexpr int64_t kW = 24;
constexpr int64_t kMs = 1'000'000;  // ns

/// Minimum relative margin between a scored frame's score and its variant
/// threshold. Cross-kernel rounding moves scores by ~1e-7 relative; 1e-5
/// leaves two orders of magnitude of slack.
constexpr double kMinDecisionMargin = 1e-5;

core::DetectorVariant variant_for(serving::ServingMode mode) {
  // The supervisor's own rung→variant mapping (covers the q8 rungs too), so
  // the margin check scores each frame against the threshold that judged it.
  return serving::Supervisor::variant_for(mode);
}

trace::TraceRunSpec base_spec(int64_t frames) {
  trace::TraceRunSpec spec;
  spec.dataset = "outdoor";
  spec.frame_seed = 2024;
  spec.fault_seed = 7;
  spec.frames = frames;
  spec.height = kH;
  spec.width = kW;
  spec.supervisor.stage_budget_ns = {kMs, kMs, kMs, kMs, kMs};
  spec.supervisor.frame_budget_ns = 1000 * kMs;
  spec.supervisor.breaker.failure_threshold = 2;
  spec.supervisor.breaker.open_frames = 4;
  spec.supervisor.demote_after_bad_frames = 1;
  spec.supervisor.promote_after_healthy_frames = 2;
  spec.supervisor.monitor.trigger_frames = 2;
  spec.supervisor.monitor.release_frames = 2;
  spec.supervisor.monitor.sensor_trigger_frames = 2;
  spec.supervisor.monitor.sensor_release_frames = 2;
  return spec;
}

struct Scenario {
  std::string name;
  trace::TraceRunSpec spec;
};

std::vector<Scenario> scenarios() {
  std::vector<Scenario> all;

  all.push_back({"nominal", base_spec(16)});

  Scenario stall{"stall_ladder", base_spec(24)};
  stall.spec.stalls.push_back({/*stage=*/2, /*stall_ns=*/10 * kMs, /*first_frame=*/3,
                               /*last_frame=*/8, /*period=*/1});
  all.push_back(stall);

  Scenario sensor{"sensor_fault", base_spec(24)};
  sensor.spec.camera_faults.push_back({faults::CameraFault::kFrozenFrame, /*severity=*/1.0,
                                       /*first=*/4, /*last=*/8, /*period=*/1});
  sensor.spec.camera_faults.push_back({faults::CameraFault::kSaltPepper, /*severity=*/1.0,
                                       /*first=*/14, /*last=*/17, /*period=*/1});
  all.push_back(sensor);

  // Three streams micro-batched on two replicas; 10 frames per stream. A
  // frozen-camera burst hits each stream's own fault schedule, so the trace
  // pins per-stream monitor divergence on top of the batch routing. No
  // stalls: concurrent replicas share the FakeClock (see
  // TraceRunSpec::validate).
  Scenario multi{"multi_stream", base_spec(10)};
  multi.spec.cluster.streams = 3;
  multi.spec.cluster.replicas = 2;
  multi.spec.cluster.gather_window_ns = 2 * kMs;
  multi.spec.cluster.max_batch = 8;
  multi.spec.cluster.arrival_period_ns = kMs;
  multi.spec.camera_faults.push_back({faults::CameraFault::kFrozenFrame, /*severity=*/1.0,
                                      /*first=*/4, /*last=*/6, /*period=*/1});
  all.push_back(multi);

  // Format v4: the replica failure domain under a deterministic fault
  // schedule. Three streams on two replicas, arrivals every 10 ms so the
  // watchdog timeline lands on the round grid:
  //   * replica 0 crashes over [0 ms, 20 ms): two missed 5 ms batch
  //     deadlines quarantine it at t=10 ms, its streams fail over to
  //     replica 1, and the half-open probe at t=20 ms restores it;
  //   * replica 1 runs 20 ms slow over [40 ms, 65 ms): quarantined at
  //     t=50 ms, the t=60 ms probe still sees the latency fault and FAILS
  //     (backoff doubles), and the t=80 ms probe restores it;
  //   * replica 0's weights are bit-flipped from t=30 ms onward (past the
  //     drain at t=100 ms, where the staged run's batches seal): every
  //     batch replica 0 seals has its speculated ProvidedCompute withheld
  //     and is re-scored from the pristine shared weights, so scores stay
  //     bit-identical while batching efficiency (provided_* counters)
  //     visibly drops. Replica 0's half-open probe at t=20 ms predates the
  //     corruption, so the canary passes and the crash recovery above is
  //     unaffected.
  // No admission credits: the golden must stay shed-free so the replay
  // compares exactly frames-per-stream x streams frames.
  Scenario failover{"replica_failover", base_spec(10)};
  failover.spec.cluster.streams = 3;
  failover.spec.cluster.replicas = 2;
  failover.spec.cluster.gather_window_ns = 5 * kMs;
  failover.spec.cluster.max_batch = 8;
  failover.spec.cluster.arrival_period_ns = 10 * kMs;
  failover.spec.cluster.watchdog.enabled = true;
  failover.spec.cluster.watchdog.batch_deadline_ns = 5 * kMs;
  failover.spec.cluster.watchdog.missed_deadlines_to_quarantine = 2;
  failover.spec.cluster.watchdog.probe_backoff_ns = 8 * kMs;
  failover.spec.cluster.watchdog.max_probe_backoff_ns = 64 * kMs;
  failover.spec.cluster.replica_faults.push_back(
      {/*replica=*/0, faults::ReplicaFaultKind::kCrash, /*start_ns=*/0,
       /*end_ns=*/20 * kMs});
  failover.spec.cluster.replica_faults.push_back(
      {/*replica=*/1, faults::ReplicaFaultKind::kSlow, /*start_ns=*/40 * kMs,
       /*end_ns=*/65 * kMs, /*slow_penalty_ns=*/20 * kMs});
  failover.spec.cluster.replica_faults.push_back(
      {/*replica=*/0, faults::ReplicaFaultKind::kWeightCorrupt, /*start_ns=*/30 * kMs,
       /*end_ns=*/200 * kMs, /*slow_penalty_ns=*/0, /*weight_bits=*/64, /*seed=*/5});
  all.push_back(failover);

  // Format v5: the quantized ladder. Reconstruct-stage stalls demote one
  // rung at a time with no breaker involvement, so the trace pins the full
  // q8 walk: frame 3's stall drops vbp+ssim -> vbp+ssim-q8 (promoted back
  // after 2 healthy frames); the {12,13,14} burst walks vbp+ssim ->
  // vbp+ssim-q8 -> vbp+mse -> vbp+mse-q8; the healthy tail climbs all four
  // rungs back to vbp+ssim by frame 22. Every q8-served frame is scored by
  // the int8 forward against the q8 rung's own fitted threshold, and the
  // integer path replays bit-exactly across GEMM kernels.
  Scenario quant{"quantized_rung", base_spec(24)};
  quant.spec.supervisor.enable_quant_rungs = true;
  quant.spec.stalls.push_back({/*stage=*/3, /*stall_ns=*/10 * kMs, /*first_frame=*/3,
                               /*last_frame=*/3, /*period=*/1});
  quant.spec.stalls.push_back({/*stage=*/3, /*stall_ns=*/10 * kMs, /*first_frame=*/12,
                               /*last_frame=*/14, /*period=*/1});
  all.push_back(quant);

  return all;
}

/// True when every scored frame's decision would survive a score nudge of
/// kMinDecisionMargin relative — the cross-kernel safety condition.
bool margins_are_safe(const trace::Trace& trace, const core::NoveltyDetector& detector,
                      const std::string& name) {
  bool safe = true;
  for (const trace::TraceFrame& frame : trace.frames) {
    if (!frame.scored || !std::isfinite(frame.score)) continue;
    const double threshold =
        detector.variant_calibration(variant_for(frame.mode)).threshold.threshold();
    const double margin =
        std::fabs(frame.score - threshold) / std::max(1.0, std::fabs(threshold));
    if (margin < kMinDecisionMargin) {
      std::fprintf(stderr,
                   "make_golden: %s frame %lld scores %.9g against threshold %.9g "
                   "(margin %.3g < %.3g) — verdict could flip across kernels; "
                   "adjust the scenario seeds\n",
                   name.c_str(), static_cast<long long>(frame.frame_index), frame.score,
                   threshold, margin, kMinDecisionMargin);
      safe = false;
    }
  }
  return safe;
}

bool replay_ok(const trace::Trace& trace, const core::NoveltyDetector& detector,
               nn::Sequential* steering, double tolerance, const std::string& what) {
  trace::ReplayOptions options;
  options.score_tolerance = tolerance;
  const trace::ReplayReport report = trace::TraceReplayer::replay(trace, detector, steering, options);
  if (!report.ok()) {
    std::fprintf(stderr, "make_golden: %s: %s\n", what.c_str(), report.format().c_str());
  }
  return report.ok();
}

int run(const std::string& out_dir, const std::string& only) {
  // Goldens are recorded under the scalar kernel: it exists on every machine,
  // so any checkout can re-verify them bit-for-bit.
  set_gemm_kernel(GemmKernel::kScalar);
  std::filesystem::create_directories(out_dir);

  std::printf("fitting golden pipeline (%lldx%lld, scalar kernel)...\n",
              static_cast<long long>(kH), static_cast<long long>(kW));
  Rng rng(41);
  nn::Sequential steering =
      driving::build_pilotnet(driving::PilotNetConfig::tiny(kH, kW), rng);

  core::NoveltyDetectorConfig config;
  config.height = kH;
  config.width = kW;
  config.preprocessing = core::Preprocessing::kVbp;
  config.score = core::ReconstructionScore::kSsim;
  config.autoencoder = core::AutoencoderConfig::tiny(kH, kW);
  config.train_epochs = 10;
  core::NoveltyDetector detector(config);
  detector.attach_steering_model(&steering);

  roadsim::OutdoorSceneGenerator generator;
  Rng frame_rng(101);
  std::vector<Image> train;
  for (int i = 0; i < 24; ++i) {
    const roadsim::Sample sample = generator.generate(frame_rng);
    train.push_back(resize_bilinear(sample.rgb.to_grayscale(), kH, kW));
  }
  detector.fit(train, rng);

  const std::string pipeline_path = out_dir + "/pipeline.bin";
  core::PipelineIo::save_file(pipeline_path, detector, &steering);
  const std::string payload = load_file_checked(pipeline_path);
  const uint32_t pipeline_crc = crc32(payload.data(), payload.size());
  std::printf("wrote %s (%zu bytes, crc 0x%08x)\n", pipeline_path.c_str(), payload.size(),
              pipeline_crc);

  bool all_ok = true;
  bool matched = false;
  for (Scenario& scenario : scenarios()) {
    if (!only.empty() && scenario.name != only) continue;
    matched = true;
    scenario.spec.pipeline_crc = pipeline_crc;
    scenario.spec.pipeline_bytes = static_cast<int64_t>(payload.size());
    const trace::Trace trace =
        trace::TraceRecorder::record(scenario.spec, detector, &steering);

    bool ok = margins_are_safe(trace, detector, scenario.name);
    parallel::set_num_threads(1);
    ok = replay_ok(trace, detector, &steering, 0.0, scenario.name + " @1 thread") && ok;
    parallel::set_num_threads(4);
    ok = replay_ok(trace, detector, &steering, 0.0, scenario.name + " @4 threads") && ok;
    parallel::set_num_threads(0);
    if (gemm_simd_available()) {
      set_gemm_kernel(GemmKernel::kSimd);
      ok = replay_ok(trace, detector, &steering, 1e-6, scenario.name + " @simd") && ok;
      set_gemm_kernel(GemmKernel::kScalar);
    }

    if (!ok) {
      all_ok = false;
      continue;
    }
    const std::string trace_path = out_dir + "/" + scenario.name + ".trace";
    trace.save_file(trace_path);
    std::printf(
        "wrote %s: %lld frames, %lld scored, %lld sensor-bad, %lld step-downs, "
        "%lld trips, %lld promotions\n",
        trace_path.c_str(), static_cast<long long>(trace.health.frames_total),
        static_cast<long long>(trace.health.frames_scored),
        static_cast<long long>(trace.health.frames_sensor_bad),
        static_cast<long long>(trace.health.step_downs),
        static_cast<long long>(trace.health.breaker_trips),
        static_cast<long long>(trace.health.promotions));
    if (!trace.events.empty()) {
      std::printf(
          "  failure domain: %zu events, %lld quarantines, %lld probe failures, "
          "%lld restores, %lld failovers, %lld redispatched, %lld shed\n",
          trace.events.size(), static_cast<long long>(trace.cluster_health.quarantines),
          static_cast<long long>(trace.cluster_health.probe_failures),
          static_cast<long long>(trace.cluster_health.restores),
          static_cast<long long>(trace.cluster_health.failovers),
          static_cast<long long>(trace.cluster_health.redispatched_frames),
          static_cast<long long>(trace.cluster_health.shed_frames));
    }
  }

  if (!matched) {
    std::fprintf(stderr, "make_golden: no scenario named '%s'\n", only.c_str());
    return 2;
  }
  if (!all_ok) {
    std::fprintf(stderr, "make_golden: verification failed; goldens not (fully) written\n");
    return 1;
  }
  std::printf("all goldens verified (1/4 threads bit-exact%s)\n",
              gemm_simd_available() ? ", cross-kernel within tolerance" : "");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir = "tests/golden";
  std::string only;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--only") == 0 && i + 1 < argc) {
      only = argv[++i];
    } else {
      std::fprintf(stderr, "usage: make_golden [--out DIR] [--only SCENARIO]\n");
      return 2;
    }
  }
  try {
    return run(out_dir, only);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "make_golden: %s\n", e.what());
    return 1;
  }
}
