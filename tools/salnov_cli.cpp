// salnov — command-line front end for the library.
//
// Subcommands cover the full offline workflow so the pipeline can be driven
// without writing C++:
//
//   salnov generate --out DIR --dataset outdoor|indoor --count N [--seed S]
//       Render scenes to PGM files plus a labels.csv (file, steering).
//   salnov train-steering --data DIR --out MODEL [--epochs N] [--config compact|paper]
//       Train the steering CNN on a generated directory.
//   salnov fit --data DIR --steering MODEL --out PIPELINE
//       [--preprocessing vbp|raw|gradient|lrp] [--score ssim|mse] [--epochs N]
//       Fit the novelty detector and save the whole pipeline.
//   salnov classify --pipeline PIPELINE IMAGE...
//       Score images; prints score, threshold, verdict per image.
//   salnov saliency --steering MODEL --out DIR IMAGE...
//       Dump VBP masks and overlays for images.
//   salnov serve --pipeline PIPELINE [--frames N] [--dataset outdoor|indoor]
//       [--fake-clock] [--stall-stage K --stall-ns NS ...] [--health-out FILE]
//       [--online-calib] [--force-swap-at N] [--threshold-store FILE]
//       [--streams N [--replicas R] [--batch-window-us W] [--max-batch B]
//        [--arrival-us U]]
//       Drive the fault-tolerant serving runtime over generated frames and
//       report the health snapshot (mode ladder, breaker, overrun counters,
//       drift/swap counters). With --online-calib the shadow calibration
//       runs and drift can hot-swap thresholds; --threshold-store persists
//       swapped sets crash-safely and reloads them at startup. With
//       --streams the multi-stream ServingCluster serves N streams
//       (--frames each) through cross-frame micro-batching and prints one
//       grep-able "stream=S ..." summary line per stream plus aggregate
//       batching counters. --watchdog enables health-checked replica
//       failover (quarantine, half-open probe restore, bounded re-dispatch),
//       --admission-credits bounds per-stream pending frames (oldest-first
//       shed past the bound), and --replica-fault injects a deterministic
//       packed fault schedule ("kind:replica:start_us:end_us[:arg[:seed]]"
//       entries joined with ';', kind in crash|hang|slow|corrupt; requires
//       --fake-clock). Failure-domain counters and the cluster event log
//       are printed as grep-able lines.
//   salnov record --pipeline PIPELINE --out TRACE [--frames N] [scenario flags]
//       Run a scenario under the FakeClock and capture the full per-frame
//       decision trace into a CRC-guarded golden-trace file. With --streams
//       the multi-stream cluster scenario is recorded (frames per stream,
//       round-robin arrivals every --arrival-us); serve's failure-domain
//       flags record a format-v4 trace whose failover/quarantine/shed
//       events replay bit-exactly.
//   salnov replay --pipeline PIPELINE --trace TRACE [--tolerance X]
//       [--threads N] [--kernel scalar|simd] [--report FILE]
//       Re-drive a recorded trace and diff the decision streams; exits 1 and
//       prints the first divergence (frame, stage, field) on any mismatch.
//
// All images are 8-bit PGM at the pipeline resolution (60x160 by default;
// --height/--width override consistently across subcommands).
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "salnov.hpp"
#include "tensor/gemm.hpp"

namespace {

using namespace salnov;

struct Args {
  std::string command;
  std::map<std::string, std::string> options;
  std::vector<std::string> positional;

  std::string get(const std::string& key, const std::string& fallback = "") const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  int64_t get_int(const std::string& key, int64_t fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : std::stoll(it->second);
  }
  bool has(const std::string& key) const { return options.count(key) > 0; }
};

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      const std::string key = token.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        args.options[key] = argv[++i];
      } else {
        args.options[key] = "1";
      }
    } else {
      args.positional.push_back(token);
    }
  }
  return args;
}

int usage() {
  std::fprintf(stderr,
               "usage: salnov <command> [options]\n"
               "  generate        --out DIR --dataset outdoor|indoor --count N [--seed S]\n"
               "  train-steering  --data DIR --out MODEL [--epochs N] [--config compact|paper]\n"
               "  fit             --data DIR --steering MODEL --out PIPELINE\n"
               "                  [--preprocessing vbp|raw|gradient|lrp] [--score ssim|mse]\n"
               "                  [--epochs N]\n"
               "  classify        --pipeline PIPELINE IMAGE...\n"
               "  saliency        --steering MODEL --out DIR IMAGE...\n"
               "  serve           --pipeline PIPELINE [--frames N] [--dataset outdoor|indoor]\n"
               "                  [--fake-clock] [--stage-budget-ns NS] [--frame-budget-ns NS]\n"
               "                  [--stall-stage K --stall-ns NS [--stall-first F]\n"
               "                   [--stall-last L] [--stall-period P]]\n"
               "                  [--demote-after N] [--promote-after N] [--quant]\n"
               "                  [--breaker-threshold N] [--breaker-open-frames N]\n"
               "                  [--online-calib] [--drift-tolerance X]\n"
               "                  [--drift-min-samples N] [--drift-check-every N]\n"
               "                  [--drift-trigger N] [--drift-release N]\n"
               "                  [--calib-warmup N] [--force-swap-at N]\n"
               "                  [--threshold-store FILE] [--health-out FILE]\n"
               "                  [--streams N [--replicas R] [--batch-window-us W]\n"
               "                   [--max-batch B] [--arrival-us U]\n"
               "                   [--watchdog] [--batch-deadline-us US]\n"
               "                   [--heartbeat-timeout-us US] [--missed-deadlines N]\n"
               "                   [--canary-period-us US] [--canary-failures N]\n"
               "                   [--probe-backoff-us US] [--max-probe-backoff-us US]\n"
               "                   [--max-redispatches N] [--admission-credits N]\n"
               "                   [--replica-fault k:r:s_us:e_us[:arg[:seed]][;...]]]\n"
               "  record          --pipeline PIPELINE --out TRACE [--frames N]\n"
               "                  [--dataset outdoor|indoor] [--frame-seed S] [--fault-seed S]\n"
               "                  [--kernel scalar|simd] [serve's budget/ladder/breaker flags]\n"
               "                  [--stall-stage K --stall-ns NS [--stall-first F]\n"
               "                   [--stall-last L] [--stall-period P]]\n"
               "                  [--camera-fault NAME [--fault-severity X] [--fault-first F]\n"
               "                   [--fault-last L] [--fault-period P]]\n"
               "                  [serve's --online-calib/drift/forced-swap flags]\n"
               "                  [--streams N [--replicas R] [--batch-window-us W]\n"
               "                   [--max-batch B] [--arrival-us U]\n"
               "                   [serve's --watchdog/--admission-credits/--replica-fault flags]]\n"
               "  replay          --pipeline PIPELINE --trace TRACE [--tolerance X]\n"
               "                  [--threads N] [--kernel scalar|simd] [--report FILE]\n"
               "common: --height H --width W (default 60 160), --seed S\n");
  return 2;
}

int fail(const std::string& message) {
  std::fprintf(stderr, "salnov: %s\n", message.c_str());
  return 1;
}

// --- generate ---------------------------------------------------------------

int cmd_generate(const Args& args) {
  const std::string out_dir = args.get("out");
  const std::string dataset = args.get("dataset", "outdoor");
  const int64_t count = args.get_int("count", 100);
  const int64_t height = args.get_int("height", 60);
  const int64_t width = args.get_int("width", 160);
  if (out_dir.empty()) return fail("generate: --out is required");
  std::filesystem::create_directories(out_dir);

  Rng rng(static_cast<uint64_t>(args.get_int("seed", 1)));
  std::unique_ptr<roadsim::SceneGenerator> generator;
  if (dataset == "outdoor") {
    generator = std::make_unique<roadsim::OutdoorSceneGenerator>();
  } else if (dataset == "indoor") {
    generator = std::make_unique<roadsim::IndoorSceneGenerator>();
  } else {
    return fail("generate: unknown dataset '" + dataset + "'");
  }

  const auto data = roadsim::DrivingDataset::generate(*generator, count, height, width, rng);
  std::ofstream labels(out_dir + "/labels.csv");
  labels << "file,steering\n";
  for (int64_t i = 0; i < data.size(); ++i) {
    char name[32];
    std::snprintf(name, sizeof name, "img%05lld.pgm", static_cast<long long>(i));
    write_pgm(out_dir + "/" + name, data.image(i));
    labels << name << ',' << data.steering(i) << '\n';
  }
  std::printf("wrote %lld %s scenes to %s (labels.csv included)\n", static_cast<long long>(count),
              dataset.c_str(), out_dir.c_str());
  return 0;
}

// --- shared data loading ----------------------------------------------------

struct LoadedData {
  std::vector<Image> images;
  std::vector<double> steering;
};

std::optional<LoadedData> load_directory(const std::string& dir) {
  std::ifstream labels(dir + "/labels.csv");
  if (!labels) return std::nullopt;
  LoadedData data;
  std::string line;
  std::getline(labels, line);  // header
  while (std::getline(labels, line)) {
    const auto comma = line.find(',');
    if (comma == std::string::npos) continue;
    data.images.push_back(read_pgm(dir + "/" + line.substr(0, comma)));
    data.steering.push_back(std::stod(line.substr(comma + 1)));
  }
  if (data.images.empty()) return std::nullopt;
  return data;
}

// --- train-steering -----------------------------------------------------------

int cmd_train_steering(const Args& args) {
  const std::string data_dir = args.get("data");
  const std::string out_path = args.get("out");
  if (data_dir.empty() || out_path.empty()) {
    return fail("train-steering: --data and --out are required");
  }
  const auto data = load_directory(data_dir);
  if (!data) return fail("train-steering: cannot load " + data_dir + "/labels.csv");

  roadsim::DrivingDataset dataset;
  for (size_t i = 0; i < data->images.size(); ++i) {
    dataset.add(data->images[i], data->steering[i], roadsim::SceneParams{});
  }

  Rng rng(static_cast<uint64_t>(args.get_int("seed", 1)));
  auto config = args.get("config", "compact") == "paper" ? driving::PilotNetConfig::paper()
                                                         : driving::PilotNetConfig::compact();
  config.input_height = dataset.height();
  config.input_width = dataset.width();
  nn::Sequential model = driving::build_pilotnet(config, rng);

  driving::SteeringTrainOptions options;
  options.epochs = args.get_int("epochs", 25);
  options.verbose = args.has("verbose");
  const auto result = driving::train_steering_model(model, dataset, options, rng);
  nn::save_model_file(out_path, model);
  std::printf("trained steering model on %lld images (final loss %.5f); saved to %s\n",
              static_cast<long long>(dataset.size()), result.train_mse, out_path.c_str());
  return 0;
}

// --- fit ---------------------------------------------------------------------

int cmd_fit(const Args& args) {
  const std::string data_dir = args.get("data");
  const std::string steering_path = args.get("steering");
  const std::string out_path = args.get("out");
  if (data_dir.empty() || out_path.empty()) return fail("fit: --data and --out are required");
  const auto data = load_directory(data_dir);
  if (!data) return fail("fit: cannot load " + data_dir + "/labels.csv");

  core::NoveltyDetectorConfig config;
  config.height = data->images.front().height();
  config.width = data->images.front().width();
  const std::string pre = args.get("preprocessing", "vbp");
  if (pre == "vbp") {
    config.preprocessing = core::Preprocessing::kVbp;
  } else if (pre == "raw") {
    config.preprocessing = core::Preprocessing::kRaw;
  } else if (pre == "gradient") {
    config.preprocessing = core::Preprocessing::kGradient;
  } else if (pre == "lrp") {
    config.preprocessing = core::Preprocessing::kLrp;
  } else {
    return fail("fit: unknown preprocessing '" + pre + "'");
  }
  config.score = args.get("score", "ssim") == "mse" ? core::ReconstructionScore::kMse
                                                    : core::ReconstructionScore::kSsim;
  config.train_epochs = args.get_int("epochs", 100);
  config.verbose = args.has("verbose");

  std::unique_ptr<nn::Sequential> steering;
  if (core::uses_saliency(config.preprocessing)) {
    if (steering_path.empty()) return fail("fit: --steering is required for saliency preprocessing");
    steering = std::make_unique<nn::Sequential>(nn::load_model_file(steering_path));
  }

  core::NoveltyDetector detector(config);
  if (steering) detector.attach_steering_model(steering.get());
  Rng rng(static_cast<uint64_t>(args.get_int("seed", 1)));
  const auto history = detector.fit(data->images, rng);
  core::PipelineIo::save_file(out_path, detector, steering.get());
  std::printf("fitted detector on %lld images (final loss %.4f, threshold %.4f); saved to %s\n",
              static_cast<long long>(data->images.size()), history.final_loss(),
              detector.threshold().threshold(), out_path.c_str());
  return 0;
}

// --- classify ------------------------------------------------------------------

int cmd_classify(const Args& args) {
  const std::string pipeline_path = args.get("pipeline");
  if (pipeline_path.empty() || args.positional.empty()) {
    return fail("classify: --pipeline and at least one image are required");
  }
  core::LoadedPipeline pipeline = core::PipelineIo::load_file(pipeline_path);
  std::printf("%-40s %10s %10s  %s\n", "image", "score", "threshold", "verdict");
  int novel_count = 0;
  for (const std::string& path : args.positional) {
    const Image image = read_pgm(path);
    const core::NoveltyResult result = pipeline.detector->classify(image);
    novel_count += result.is_novel ? 1 : 0;
    std::printf("%-40s %10.4f %10.4f  %s\n", path.c_str(), result.score, result.threshold,
                result.is_novel ? "NOVEL" : "ok");
  }
  std::printf("%d/%zu flagged novel\n", novel_count, args.positional.size());
  return 0;
}

// --- saliency -------------------------------------------------------------------

int cmd_saliency(const Args& args) {
  const std::string steering_path = args.get("steering");
  const std::string out_dir = args.get("out", ".");
  if (steering_path.empty() || args.positional.empty()) {
    return fail("saliency: --steering and at least one image are required");
  }
  std::filesystem::create_directories(out_dir);
  nn::Sequential model = nn::load_model_file(steering_path);
  saliency::VisualBackProp vbp;
  for (const std::string& path : args.positional) {
    const Image image = read_pgm(path);
    const Image mask = vbp.compute(model, image);
    Image overlay(image.height(), image.width());
    for (int64_t i = 0; i < overlay.numel(); ++i) {
      overlay.tensor()[i] = 0.45f * image.tensor()[i] + 0.55f * mask.tensor()[i];
    }
    const std::string stem =
        out_dir + "/" + std::filesystem::path(path).stem().string();
    write_pgm(stem + "_mask.pgm", mask);
    write_pgm(stem + "_overlay.pgm", overlay);
    std::printf("%s -> %s_mask.pgm, %s_overlay.pgm (steering %.3f)\n", path.c_str(), stem.c_str(),
                stem.c_str(), driving::predict_steering(model, image));
  }
  return 0;
}

// --- serve ----------------------------------------------------------------------

/// Shared by serve and record: online-calibration knobs. --force-swap-at
/// implies the calibration loop (a forced swap needs the shadow sketches).
/// `store_path` is serve-only — a recorded trace must stay machine-portable.
void apply_calibration_flags(const Args& args, calib::OnlineCalibrationConfig& calibration) {
  calibration.enabled = args.has("online-calib") || args.has("force-swap-at");
  if (args.has("drift-tolerance")) {
    calibration.drift_tolerance = std::stod(args.get("drift-tolerance"));
  }
  calibration.warmup = args.get_int("calib-warmup", calibration.warmup);
  calibration.min_samples = args.get_int("drift-min-samples", calibration.min_samples);
  calibration.check_every_frames =
      args.get_int("drift-check-every", calibration.check_every_frames);
  calibration.trigger_checks = args.get_int("drift-trigger", calibration.trigger_checks);
  calibration.release_checks = args.get_int("drift-release", calibration.release_checks);
  if (args.has("force-swap-at")) {
    calibration.forced_swap_frames.push_back(args.get_int("force-swap-at", 0));
  }
}

std::unique_ptr<roadsim::SceneGenerator> make_generator(const std::string& dataset) {
  if (dataset == "outdoor") return std::make_unique<roadsim::OutdoorSceneGenerator>();
  if (dataset == "indoor") return std::make_unique<roadsim::IndoorSceneGenerator>();
  return nullptr;
}

std::optional<faults::ReplicaFaultKind> parse_replica_fault_kind(const std::string& name) {
  if (name == "crash") return faults::ReplicaFaultKind::kCrash;
  if (name == "hang") return faults::ReplicaFaultKind::kHang;
  if (name == "slow") return faults::ReplicaFaultKind::kSlow;
  if (name == "corrupt") return faults::ReplicaFaultKind::kWeightCorrupt;
  return std::nullopt;
}

/// Parses a packed --replica-fault schedule. The flag map keeps only the
/// last occurrence of a repeated flag, so the whole schedule rides in one
/// value: ';'-separated entries of the form
///   kind:replica:start_us:end_us[:arg[:seed]]
/// with kind in crash|hang|slow|corrupt; arg is the slowdown in us for
/// `slow` and the flipped-bit count for `corrupt` (default 64).
bool parse_replica_faults(const std::string& packed, std::vector<faults::ReplicaFault>& out,
                          std::string& error) {
  std::stringstream entries(packed);
  std::string entry;
  while (std::getline(entries, entry, ';')) {
    if (entry.empty()) continue;
    std::vector<std::string> fields;
    std::stringstream fs(entry);
    std::string field;
    while (std::getline(fs, field, ':')) fields.push_back(field);
    if (fields.size() < 4 || fields.size() > 6) {
      error = "bad --replica-fault entry '" + entry +
              "' (want kind:replica:start_us:end_us[:arg[:seed]])";
      return false;
    }
    const auto kind = parse_replica_fault_kind(fields[0]);
    if (!kind) {
      error = "unknown replica fault kind '" + fields[0] + "' (crash|hang|slow|corrupt)";
      return false;
    }
    faults::ReplicaFault fault;
    fault.kind = *kind;
    fault.replica = std::stoll(fields[1]);
    fault.start_ns = std::stoll(fields[2]) * 1000;
    fault.end_ns = std::stoll(fields[3]) * 1000;
    if (fault.kind == faults::ReplicaFaultKind::kSlow) {
      fault.slow_penalty_ns = (fields.size() > 4 ? std::stoll(fields[4]) : 0) * 1000;
    } else if (fault.kind == faults::ReplicaFaultKind::kWeightCorrupt) {
      fault.weight_bits = fields.size() > 4 ? std::stoll(fields[4]) : 64;
    }
    if (fields.size() > 5) fault.seed = static_cast<uint64_t>(std::stoull(fields[5]));
    out.push_back(fault);
  }
  return true;
}

/// Applies the replica failure-domain flags shared by `serve --streams` and
/// `record --streams`: --watchdog enables health-checked failover, the
/// -us flags tune its deadlines, --admission-credits bounds per-stream
/// pending frames, and --replica-fault schedules deterministic faults.
bool apply_failure_domain_flags(const Args& args, serving::WatchdogConfig& watchdog,
                                int64_t& admission_credits,
                                std::vector<faults::ReplicaFault>& schedule, std::string& error) {
  if (args.has("watchdog")) watchdog.enabled = true;
  if (args.has("batch-deadline-us")) {
    watchdog.batch_deadline_ns = args.get_int("batch-deadline-us", 0) * 1000;
  }
  if (args.has("heartbeat-timeout-us")) {
    watchdog.heartbeat_timeout_ns = args.get_int("heartbeat-timeout-us", 0) * 1000;
  }
  watchdog.missed_deadlines_to_quarantine = static_cast<int>(
      args.get_int("missed-deadlines", watchdog.missed_deadlines_to_quarantine));
  if (args.has("canary-period-us")) {
    watchdog.canary_period_ns = args.get_int("canary-period-us", 0) * 1000;
  }
  watchdog.canary_failures_to_quarantine = static_cast<int>(
      args.get_int("canary-failures", watchdog.canary_failures_to_quarantine));
  if (args.has("probe-backoff-us")) {
    watchdog.probe_backoff_ns = args.get_int("probe-backoff-us", 0) * 1000;
    if (watchdog.max_probe_backoff_ns < watchdog.probe_backoff_ns) {
      watchdog.max_probe_backoff_ns = 8 * watchdog.probe_backoff_ns;
    }
  }
  if (args.has("max-probe-backoff-us")) {
    watchdog.max_probe_backoff_ns = args.get_int("max-probe-backoff-us", 0) * 1000;
  }
  watchdog.max_redispatches =
      static_cast<int>(args.get_int("max-redispatches", watchdog.max_redispatches));
  admission_credits = args.get_int("admission-credits", admission_credits);
  if (args.has("replica-fault")) {
    if (!parse_replica_faults(args.get("replica-fault"), schedule, error)) return false;
    // A fault schedule without a watchdog is legal (faults hit, nobody
    // reacts) but almost never what the operator meant on the CLI.
    if (!watchdog.enabled) {
      std::fprintf(stderr, "salnov: note: --replica-fault without --watchdog — faults will "
                           "fire but no failover will occur\n");
    }
  }
  return true;
}

/// Multi-stream serve: drives a ServingCluster with --frames frames PER
/// stream, round-robin arrivals. Under --fake-clock the arrival schedule is
/// staged while paused so the batch composition (and hence the stats lines)
/// is reproducible bit-for-bit.
int cmd_serve_cluster(const Args& args, const core::LoadedPipeline& pipeline,
                      const serving::SupervisorConfig& supervisor_config, serving::Clock* clock,
                      serving::FakeClock* fake, const std::string& dataset, int64_t frames) {
  const core::NoveltyDetector& detector = *pipeline.detector;
  serving::ClusterConfig config;
  config.streams = args.get_int("streams", 1);
  config.replicas = args.get_int("replicas", 1);
  config.gather_window_ns = args.get_int("batch-window-us", 2000) * 1000;
  config.max_batch = args.get_int("max-batch", config.max_batch);
  config.supervisor = supervisor_config;
  if (config.streams < 1) return fail("serve: --streams must be >= 1");
  if (config.replicas < 1) return fail("serve: --replicas must be >= 1");
  const int64_t arrival_ns = args.get_int("arrival-us", 1000) * 1000;

  // Replica failure domain: watchdog knobs, admission credits, and a packed
  // deterministic fault schedule (which must outlive the cluster).
  std::vector<faults::ReplicaFault> fault_list;
  std::string fd_error;
  if (!apply_failure_domain_flags(args, config.watchdog, config.admission_credits, fault_list,
                                  fd_error)) {
    return fail("serve: " + fd_error);
  }
  faults::ReplicaFaultSchedule fault_schedule;
  for (const faults::ReplicaFault& fault : fault_list) {
    if (fault.replica < 0 || fault.replica >= config.replicas) {
      return fail("serve: --replica-fault names replica " + std::to_string(fault.replica) +
                  " but the cluster has " + std::to_string(config.replicas));
    }
    fault_schedule.add(fault);
  }
  if (!fault_list.empty()) config.replica_faults = &fault_schedule;
  if (!fake && !fault_list.empty()) {
    return fail("serve: --replica-fault needs --fake-clock (fault windows are offsets into "
                "fake time; a wall clock never enters them)");
  }

  serving::ServingCluster cluster(detector, pipeline.steering_model.get(), config, clock);

  const uint64_t seed = static_cast<uint64_t>(args.get_int("seed", 1));
  std::vector<std::unique_ptr<roadsim::SceneGenerator>> generators;
  std::vector<Rng> rngs;
  for (int64_t s = 0; s < config.streams; ++s) {
    generators.push_back(make_generator(dataset));
    rngs.emplace_back(seed + static_cast<uint64_t>(s));
  }

  if (fake) cluster.pause();
  for (int64_t i = 0; i < frames; ++i) {
    for (int64_t s = 0; s < config.streams; ++s) {
      const roadsim::Sample sample = generators[static_cast<size_t>(s)]->generate(
          rngs[static_cast<size_t>(s)]);
      Image view = resize_bilinear(sample.rgb.to_grayscale(), detector.config().height,
                                   detector.config().width);
      cluster.submit(s, std::move(view));
    }
    if (fake) fake->advance_ns(arrival_ns);
  }
  cluster.drain();
  const std::vector<serving::ClusterResult> results = cluster.take_results();

  const serving::HealthSnapshot aggregate = cluster.aggregate_health();
  const serving::ClusterStats stats = cluster.stats();
  const std::string json = aggregate.to_json();
  const std::string health_out = args.get("health-out");
  if (!health_out.empty()) {
    std::ofstream out(health_out);
    if (!out) return fail("serve: cannot write " + health_out);
    out << json << '\n';
  }
  std::printf("%s\n", json.c_str());

  // Grep-able per-stream summary lines for shell harnesses.
  int64_t novel_total = 0;
  for (int64_t s = 0; s < config.streams; ++s) {
    int64_t stream_frames = 0, stream_scored = 0, stream_novel = 0;
    for (const serving::ClusterResult& r : results) {
      if (r.stream_id != s) continue;
      ++stream_frames;
      stream_scored += r.result.scored ? 1 : 0;
      stream_novel += (r.result.scored && r.result.novel) ? 1 : 0;
    }
    novel_total += stream_novel;
    const serving::HealthSnapshot health = cluster.stream_health(s);
    std::printf("stream=%lld frames=%lld scored=%lld novel=%lld final_mode=%s breaker_state=%s\n",
                static_cast<long long>(s), static_cast<long long>(stream_frames),
                static_cast<long long>(stream_scored), static_cast<long long>(stream_novel),
                serving::serving_mode_name(health.mode),
                serving::breaker_state_name(health.breaker_state));
  }

  // Aggregate lines, same keys as single-stream serve plus batching counters.
  std::printf("streams=%lld\n", static_cast<long long>(cluster.streams()));
  std::printf("replicas=%lld\n", static_cast<long long>(cluster.replicas()));
  std::printf("final_mode=%s\n", serving::serving_mode_name(aggregate.mode));
  std::printf("breaker_state=%s\n", serving::breaker_state_name(aggregate.breaker_state));
  std::printf("frames_total=%lld\n", static_cast<long long>(aggregate.frames_total));
  std::printf("frames_scored=%lld\n", static_cast<long long>(aggregate.frames_scored));
  std::printf("novel_frames=%lld\n", static_cast<long long>(novel_total));
  std::printf("deadline_overruns=%lld\n", static_cast<long long>(aggregate.deadline_overruns));
  std::printf("batches=%lld\n", static_cast<long long>(stats.batches));
  std::printf("batched_frames=%lld\n", static_cast<long long>(stats.batched_frames));
  std::printf("max_batch_seals=%lld\n", static_cast<long long>(stats.max_batch_seals));
  std::printf("window_seals=%lld\n", static_cast<long long>(stats.window_seals));
  std::printf("flush_seals=%lld\n", static_cast<long long>(stats.flush_seals));
  std::printf("max_gather_wait_us=%lld\n", static_cast<long long>(stats.max_gather_wait_ns / 1000));
  std::printf("provided_steer=%lld\n", static_cast<long long>(stats.provided_steer));
  std::printf("provided_saliency=%lld\n", static_cast<long long>(stats.provided_saliency));
  std::printf("provided_recon=%lld\n", static_cast<long long>(stats.provided_recon));
  std::printf("recon_mispredicts=%lld\n", static_cast<long long>(stats.recon_mispredicts));
  std::printf("prescreen_rejects=%lld\n", static_cast<long long>(stats.prescreen_rejects));
  // Failure-domain counters (all zero without a watchdog / fault schedule).
  std::printf("quarantines=%lld\n", static_cast<long long>(stats.quarantines));
  std::printf("probe_attempts=%lld\n", static_cast<long long>(stats.probe_attempts));
  std::printf("probe_failures=%lld\n", static_cast<long long>(stats.probe_failures));
  std::printf("restores=%lld\n", static_cast<long long>(stats.restores));
  std::printf("failovers=%lld\n", static_cast<long long>(stats.failovers));
  std::printf("redispatched_frames=%lld\n", static_cast<long long>(stats.redispatched_frames));
  std::printf("fallback_frames=%lld\n", static_cast<long long>(stats.fallback_frames));
  std::printf("shed_frames=%lld\n", static_cast<long long>(stats.shed_frames));
  std::printf("slow_batches=%lld\n", static_cast<long long>(stats.slow_batches));
  std::printf("canary_checks=%lld\n", static_cast<long long>(stats.canary_checks));
  std::printf("canary_failures=%lld\n", static_cast<long long>(stats.canary_failures));
  for (const serving::ClusterEvent& event : cluster.take_events()) {
    std::printf("cluster_event kind=%s at_us=%lld replica=%lld stream=%lld detail=%lld\n",
                serving::cluster_event_kind_name(event.kind),
                static_cast<long long>(event.at_ns / 1000), static_cast<long long>(event.replica),
                static_cast<long long>(event.stream), static_cast<long long>(event.detail));
  }
  return 0;
}

int cmd_serve(const Args& args) {
  const std::string pipeline_path = args.get("pipeline");
  if (pipeline_path.empty()) return fail("serve: --pipeline is required");
  core::LoadedPipeline pipeline = core::PipelineIo::load_file(pipeline_path);
  const core::NoveltyDetector& detector = *pipeline.detector;

  const int64_t frames = args.get_int("frames", 200);
  if (frames < 1) return fail("serve: --frames must be >= 1");
  const std::string dataset = args.get("dataset", "outdoor");
  std::unique_ptr<roadsim::SceneGenerator> generator = make_generator(dataset);
  if (!generator) return fail("serve: unknown dataset '" + dataset + "'");

  serving::SupervisorConfig config;
  if (args.has("stage-budget-ns")) {
    config.stage_budget_ns.fill(args.get_int("stage-budget-ns", 0));
  }
  config.frame_budget_ns = args.get_int("frame-budget-ns", config.frame_budget_ns);
  config.demote_after_bad_frames =
      static_cast<int>(args.get_int("demote-after", config.demote_after_bad_frames));
  config.promote_after_healthy_frames =
      static_cast<int>(args.get_int("promote-after", config.promote_after_healthy_frames));
  config.breaker.failure_threshold =
      static_cast<int>(args.get_int("breaker-threshold", config.breaker.failure_threshold));
  config.breaker.open_frames = args.get_int("breaker-open-frames", config.breaker.open_frames);
  // Int8-quantized ladder rungs; silently inert when the pipeline file was
  // fitted (or saved) without quantization state.
  config.enable_quant_rungs = args.has("quant");
  apply_calibration_flags(args, config.calibration);
  const std::string threshold_store = args.get("threshold-store");
  if (!threshold_store.empty()) config.calibration.store_path = threshold_store;

  faults::TimingFaultInjector injector;
  if (args.has("stall-stage")) {
    faults::TimingFault fault;
    fault.stage = static_cast<int>(args.get_int("stall-stage", 2));
    fault.stall_ns = args.get_int("stall-ns", 0);
    fault.first_frame = args.get_int("stall-first", 0);
    fault.last_frame = args.get_int("stall-last", fault.last_frame);
    fault.period = args.get_int("stall-period", 1);
    injector.add(fault);
    config.timing_faults = &injector;
  }

  // Under --fake-clock the only elapsed time is the injected stalls, so the
  // overrun/fallback trace is reproducible bit-for-bit across machines.
  serving::FakeClock fake_clock;
  serving::FakeClock* fake = args.has("fake-clock") ? &fake_clock : nullptr;
  serving::Clock* clock = fake;

  if (args.has("streams")) {
    if (!threshold_store.empty()) {
      return fail("serve: --threshold-store is single-stream only (one store per supervisor)");
    }
    return cmd_serve_cluster(args, pipeline, config, clock, fake, dataset, frames);
  }

  serving::Supervisor supervisor(detector, pipeline.steering_model.get(), config, clock);

  // Crash recovery: an earlier run's swap that completed its atomic rename
  // (even if the process died immediately after) is picked up here.
  if (!threshold_store.empty() && std::filesystem::exists(threshold_store)) {
    auto recovered =
        std::make_shared<calib::ThresholdSet>(calib::ThresholdSet::load_file(threshold_store));
    std::printf("recovered threshold store %s (epoch %lld)\n", threshold_store.c_str(),
                static_cast<long long>(recovered->epoch));
    supervisor.install_thresholds(std::move(recovered));
  }

  Rng rng(static_cast<uint64_t>(args.get_int("seed", 1)));
  int64_t novel_frames = 0;
  for (int64_t i = 0; i < frames; ++i) {
    const roadsim::Sample sample = generator->generate(rng);
    Image view = resize_bilinear(sample.rgb.to_grayscale(), detector.config().height,
                                 detector.config().width);
    const serving::ServeResult result = supervisor.process(view);
    novel_frames += (result.scored && result.novel) ? 1 : 0;
  }

  const serving::HealthSnapshot health = supervisor.health();
  const std::string json = health.to_json();
  const std::string health_out = args.get("health-out");
  if (!health_out.empty()) {
    std::ofstream out(health_out);
    if (!out) return fail("serve: cannot write " + health_out);
    out << json << '\n';
  }
  std::printf("%s\n", json.c_str());
  // Grep-able summary lines for shell harnesses.
  std::printf("final_mode=%s\n", serving::serving_mode_name(health.mode));
  std::printf("breaker_state=%s\n", serving::breaker_state_name(health.breaker_state));
  std::printf("frames_total=%lld\n", static_cast<long long>(health.frames_total));
  std::printf("frames_scored=%lld\n", static_cast<long long>(health.frames_scored));
  std::printf("novel_frames=%lld\n", static_cast<long long>(novel_frames));
  std::printf("deadline_overruns=%lld\n", static_cast<long long>(health.deadline_overruns));
  std::printf("step_downs=%lld\n", static_cast<long long>(health.step_downs));
  std::printf("promotions=%lld\n", static_cast<long long>(health.promotions));
  std::printf("breaker_trips=%lld\n", static_cast<long long>(health.breaker_trips));
  for (const serving::ThresholdSwapEvent& event : supervisor.swap_events()) {
    std::printf("swap_event frame=%lld epoch=%lld reason=%s persisted=%d\n",
                static_cast<long long>(event.frame_index), static_cast<long long>(event.epoch),
                event.forced ? "forced" : "drift", event.persisted ? 1 : 0);
  }
  std::printf("threshold_swaps=%lld\n", static_cast<long long>(health.threshold_swaps));
  std::printf("drift_checks=%lld\n", static_cast<long long>(health.drift_checks));
  std::printf("drift_detections=%lld\n", static_cast<long long>(health.drift_detections));
  return 0;
}

// --- record / replay ------------------------------------------------------------

std::optional<faults::CameraFault> parse_camera_fault(const std::string& name) {
  using faults::CameraFault;
  for (const CameraFault fault :
       {CameraFault::kFrozenFrame, CameraFault::kDroppedFrame, CameraFault::kSaltPepper,
        CameraFault::kBandTearing, CameraFault::kOverExposure, CameraFault::kUnderExposure,
        CameraFault::kOcclusion, CameraFault::kGaussianBlur}) {
    if (name == faults::camera_fault_name(fault)) return fault;
  }
  return std::nullopt;
}

/// Applies --kernel scalar|simd (no flag = ambient dispatch). Returns false
/// with a message on an unknown or unsupported kernel.
bool apply_kernel_flag(const Args& args, std::string& error) {
  if (!args.has("kernel")) return true;
  const std::string kernel = args.get("kernel");
  if (kernel == "scalar") {
    set_gemm_kernel(GemmKernel::kScalar);
  } else if (kernel == "simd") {
    if (!gemm_simd_available()) {
      error = "SIMD kernel not available on this CPU";
      return false;
    }
    set_gemm_kernel(GemmKernel::kSimd);
  } else {
    error = "unknown kernel '" + kernel + "' (scalar|simd)";
    return false;
  }
  return true;
}

int cmd_record(const Args& args) {
  const std::string pipeline_path = args.get("pipeline");
  const std::string out_path = args.get("out");
  if (pipeline_path.empty() || out_path.empty()) {
    return fail("record: --pipeline and --out are required");
  }
  std::string kernel_error;
  if (!apply_kernel_flag(args, kernel_error)) return fail("record: " + kernel_error);
  core::LoadedPipeline pipeline = core::PipelineIo::load_file(pipeline_path);

  trace::TraceRunSpec spec;
  spec.dataset = args.get("dataset", "outdoor");
  spec.frame_seed = static_cast<uint64_t>(args.get_int("frame-seed", 1));
  spec.fault_seed = static_cast<uint64_t>(args.get_int("fault-seed", 77));
  spec.frames = args.get_int("frames", 100);
  // The scenario runs at the pipeline's own resolution — a trace is only
  // meaningful against the detector it was recorded with.
  spec.height = pipeline.detector->config().height;
  spec.width = pipeline.detector->config().width;

  if (args.has("stage-budget-ns")) {
    spec.supervisor.stage_budget_ns.fill(args.get_int("stage-budget-ns", 0));
  }
  spec.supervisor.frame_budget_ns =
      args.get_int("frame-budget-ns", spec.supervisor.frame_budget_ns);
  spec.supervisor.demote_after_bad_frames = static_cast<int>(
      args.get_int("demote-after", spec.supervisor.demote_after_bad_frames));
  spec.supervisor.promote_after_healthy_frames = static_cast<int>(
      args.get_int("promote-after", spec.supervisor.promote_after_healthy_frames));
  spec.supervisor.breaker.failure_threshold = static_cast<int>(
      args.get_int("breaker-threshold", spec.supervisor.breaker.failure_threshold));
  spec.supervisor.breaker.open_frames =
      args.get_int("breaker-open-frames", spec.supervisor.breaker.open_frames);
  spec.supervisor.enable_quant_rungs = args.has("quant");
  apply_calibration_flags(args, spec.supervisor.calibration);

  if (args.has("stall-stage")) {
    faults::TimingFault stall;
    stall.stage = static_cast<int>(args.get_int("stall-stage", 2));
    stall.stall_ns = args.get_int("stall-ns", 0);
    stall.first_frame = args.get_int("stall-first", 0);
    stall.last_frame = args.get_int("stall-last", stall.last_frame);
    stall.period = args.get_int("stall-period", 1);
    spec.stalls.push_back(stall);
  }
  if (args.has("camera-fault")) {
    const auto fault = parse_camera_fault(args.get("camera-fault"));
    if (!fault) return fail("record: unknown camera fault '" + args.get("camera-fault") + "'");
    trace::TraceCameraFault scheduled;
    scheduled.fault = *fault;
    scheduled.severity = std::stod(args.get("fault-severity", "1.0"));
    scheduled.first_frame = args.get_int("fault-first", 0);
    scheduled.last_frame = args.get_int("fault-last", scheduled.last_frame);
    scheduled.period = args.get_int("fault-period", 1);
    spec.camera_faults.push_back(scheduled);
  }

  // Multi-stream cluster scenario: --frames becomes frames PER stream and
  // arrivals are round-robin every --arrival-us (see TraceClusterSpec).
  spec.cluster.streams = args.get_int("streams", 0);
  spec.cluster.replicas = args.get_int("replicas", spec.cluster.replicas);
  if (args.has("batch-window-us")) {
    spec.cluster.gather_window_ns = args.get_int("batch-window-us", 2000) * 1000;
  }
  spec.cluster.max_batch = args.get_int("max-batch", spec.cluster.max_batch);
  if (args.has("arrival-us")) {
    spec.cluster.arrival_period_ns = args.get_int("arrival-us", 1000) * 1000;
  }
  std::string fd_error;
  if (!apply_failure_domain_flags(args, spec.cluster.watchdog, spec.cluster.admission_credits,
                                  spec.cluster.replica_faults, fd_error)) {
    return fail("record: " + fd_error);
  }

  // Bind the trace to the exact pipeline bytes it was recorded against.
  const std::string payload = load_file_checked(pipeline_path);
  spec.pipeline_crc = crc32(payload.data(), payload.size());
  spec.pipeline_bytes = static_cast<int64_t>(payload.size());
  spec.validate();

  const trace::Trace trace =
      trace::TraceRecorder::record(spec, *pipeline.detector, pipeline.steering_model.get());
  trace.save_file(out_path);
  std::printf("recorded %lld frames (%lld scored, %lld sensor-bad, %lld abandoned) to %s\n",
              static_cast<long long>(trace.health.frames_total),
              static_cast<long long>(trace.health.frames_scored),
              static_cast<long long>(trace.health.frames_sensor_bad),
              static_cast<long long>(trace.health.frames_abandoned), out_path.c_str());
  return 0;
}

int cmd_replay(const Args& args) {
  const std::string pipeline_path = args.get("pipeline");
  const std::string trace_path = args.get("trace");
  if (pipeline_path.empty() || trace_path.empty()) {
    return fail("replay: --pipeline and --trace are required");
  }
  std::string kernel_error;
  if (!apply_kernel_flag(args, kernel_error)) return fail("replay: " + kernel_error);
  if (args.has("threads")) {
    parallel::set_num_threads(static_cast<int>(args.get_int("threads", 0)));
  }

  const trace::Trace trace = trace::Trace::load_file(trace_path);
  if (trace.spec.pipeline_crc != 0) {
    const std::string payload = load_file_checked(pipeline_path);
    if (trace.spec.pipeline_crc != crc32(payload.data(), payload.size()) ||
        trace.spec.pipeline_bytes != static_cast<int64_t>(payload.size())) {
      return fail("replay: " + pipeline_path +
                  " is not the pipeline this trace was recorded against (CRC mismatch)");
    }
  }
  core::LoadedPipeline pipeline = core::PipelineIo::load_file(pipeline_path);

  trace::ReplayOptions options;
  options.score_tolerance = std::stod(args.get("tolerance", "0"));
  const trace::ReplayReport report = trace::TraceReplayer::replay(
      trace, *pipeline.detector, pipeline.steering_model.get(), options);

  const std::string line = report.format();
  std::printf("%s\n", line.c_str());
  const std::string report_path = args.get("report");
  if (!report_path.empty()) {
    std::ofstream out(report_path);
    if (!out) return fail("replay: cannot write " + report_path);
    out << line << '\n';
  }
  return report.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  try {
    if (args.command == "generate") return cmd_generate(args);
    if (args.command == "train-steering") return cmd_train_steering(args);
    if (args.command == "fit") return cmd_fit(args);
    if (args.command == "classify") return cmd_classify(args);
    if (args.command == "saliency") return cmd_saliency(args);
    if (args.command == "serve") return cmd_serve(args);
    if (args.command == "record") return cmd_record(args);
    if (args.command == "replay") return cmd_replay(args);
  } catch (const TruncatedFileError& e) {
    return fail(std::string(e.what()) +
                " (file is incomplete — re-run the fit/train step that produced it)");
  } catch (const CorruptFileError& e) {
    return fail(std::string(e.what()) +
                " (file is damaged — restore it from backup or re-create it)");
  } catch (const SerializationError& e) {
    return fail(std::string("cannot read file: ") + e.what());
  } catch (const std::exception& e) {
    return fail(e.what());
  }
  return usage();
}
